//! Magic sequences for the taint-aware CFI scheme (Section 4).
//!
//! Two 59-bit prefixes, `MCall` and `MRet`, are chosen post-link so that they
//! appear nowhere else in the binary.  Every procedure entry is preceded by a
//! 64-bit word `MCall ++ 5 taint bits` (the taints of the four argument
//! registers plus the return register) and every valid return site by
//! `MRet ++ 1 taint bit ++ 4 zero bits`.

use confllvm_minic::Taint;
use rand::Rng;

/// Number of taint bits carried by a call magic word.
pub const CALL_TAINT_BITS: u32 = 5;
/// Number of low bits reserved for taints in every magic word.
pub const TAINT_FIELD_BITS: u32 = 5;
/// Width of the random prefix.
pub const PREFIX_BITS: u32 = 59;

/// The pair of magic prefixes chosen for one binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MagicPrefixes {
    /// 59-bit prefix marking procedure entries.
    pub call_prefix: u64,
    /// 59-bit prefix marking valid return sites.
    pub ret_prefix: u64,
}

impl MagicPrefixes {
    /// Fixed prefixes used in unit tests (never searched for uniqueness).
    pub fn test_defaults() -> Self {
        MagicPrefixes {
            call_prefix: 0x005c_a1ab_1ec0_ffee & PREFIX_MASK,
            ret_prefix: 0x00de_cafb_adf0_0d01 & PREFIX_MASK,
        }
    }

    /// Build the call magic word for a function signature: taints of the four
    /// argument registers and the return register (Section 4's example uses
    /// `#M_call#11111#` for `add`).
    pub fn call_word(&self, arg_taints: [Taint; 4], ret_taint: Taint) -> u64 {
        let mut bits = 0u64;
        for (i, t) in arg_taints.iter().enumerate() {
            bits |= t.bit() << i;
        }
        bits |= ret_taint.bit() << 4;
        (self.call_prefix << TAINT_FIELD_BITS) | bits
    }

    /// Build the return-site magic word: one taint bit for the return value
    /// register, padded with four zero bits.
    pub fn ret_word(&self, ret_taint: Taint) -> u64 {
        (self.ret_prefix << TAINT_FIELD_BITS) | ret_taint.bit()
    }

    /// Does this word carry the call prefix?
    pub fn is_call_word(&self, word: u64) -> bool {
        (word >> TAINT_FIELD_BITS) == self.call_prefix
    }

    /// Does this word carry the return-site prefix?
    pub fn is_ret_word(&self, word: u64) -> bool {
        (word >> TAINT_FIELD_BITS) == self.ret_prefix
    }

    /// Decode the argument/return taints from a call magic word.
    pub fn decode_call(&self, word: u64) -> Option<([Taint; 4], Taint)> {
        if !self.is_call_word(word) {
            return None;
        }
        let bits = word & ((1 << TAINT_FIELD_BITS) - 1);
        let mut args = [Taint::Public; 4];
        for (i, a) in args.iter_mut().enumerate() {
            *a = Taint::from_bit(bits >> i);
        }
        Some((args, Taint::from_bit(bits >> 4)))
    }

    /// Decode the return-value taint from a return-site magic word.
    pub fn decode_ret(&self, word: u64) -> Option<Taint> {
        if !self.is_ret_word(word) {
            return None;
        }
        Some(Taint::from_bit(word & 1))
    }
}

const PREFIX_MASK: u64 = (1u64 << PREFIX_BITS) - 1;

/// Search for a pair of 59-bit prefixes that do not occur in any word of the
/// given code image (Section 6: "we find these sequences by generating random
/// bit sequences and checking for uniqueness").  `words` should contain every
/// code word of U *and* T that will be loaded together.
pub fn find_unique_prefixes<R: Rng>(rng: &mut R, words: &[u64]) -> MagicPrefixes {
    let call_prefix = find_one_prefix(rng, words, None);
    let ret_prefix = find_one_prefix(rng, words, Some(call_prefix));
    MagicPrefixes {
        call_prefix,
        ret_prefix,
    }
}

fn find_one_prefix<R: Rng>(rng: &mut R, words: &[u64], avoid: Option<u64>) -> u64 {
    loop {
        let candidate: u64 = rng.gen::<u64>() & PREFIX_MASK;
        if candidate == 0 || Some(candidate) == avoid {
            continue;
        }
        let collides = words.iter().any(|w| (w >> TAINT_FIELD_BITS) == candidate);
        if !collides {
            return candidate;
        }
    }
}

/// Pack four argument taints from a possibly shorter list (missing/unused
/// argument registers are conservatively treated as private, Section 4).
pub fn pad_arg_taints(taints: &[Taint]) -> [Taint; 4] {
    let mut out = [Taint::Private; 4];
    for (i, t) in taints.iter().take(4).enumerate() {
        out[i] = *t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn call_word_roundtrip() {
        let p = MagicPrefixes::test_defaults();
        let args = [
            Taint::Public,
            Taint::Private,
            Taint::Private,
            Taint::Private,
        ];
        let w = p.call_word(args, Taint::Private);
        assert!(p.is_call_word(w));
        assert!(!p.is_ret_word(w));
        let (decoded_args, ret) = p.decode_call(w).unwrap();
        assert_eq!(decoded_args, args);
        assert_eq!(ret, Taint::Private);
    }

    #[test]
    fn paper_example_encodings() {
        // `add` in Section 4 has taint bits 11111; `incr` has 01111.
        let p = MagicPrefixes::test_defaults();
        let all_private = p.call_word([Taint::Private; 4], Taint::Private);
        assert_eq!(all_private & 0x1f, 0b11111);
        let incr = p.call_word(
            [
                Taint::Public,
                Taint::Private,
                Taint::Private,
                Taint::Private,
            ],
            Taint::Private,
        );
        assert_eq!(incr & 0x1f, 0b11110);
        // The return site after the call to add has bits 00001 (private
        // return value, 4 bits of padding).
        let ret = p.ret_word(Taint::Private);
        assert_eq!(ret & 0x1f, 0b00001);
    }

    #[test]
    fn ret_word_roundtrip() {
        let p = MagicPrefixes::test_defaults();
        let w = p.ret_word(Taint::Public);
        assert_eq!(p.decode_ret(w), Some(Taint::Public));
        let w = p.ret_word(Taint::Private);
        assert_eq!(p.decode_ret(w), Some(Taint::Private));
    }

    #[test]
    fn unique_prefix_search_avoids_collisions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Construct a word list that "contains" some candidate prefixes.
        let mut words = vec![0u64, 42, 0xffff_ffff_ffff_ffff];
        for i in 0..1000u64 {
            words.push(i << TAINT_FIELD_BITS);
        }
        let p = find_unique_prefixes(&mut rng, &words);
        assert!(p.call_prefix != p.ret_prefix);
        for w in &words {
            assert_ne!(w >> TAINT_FIELD_BITS, p.call_prefix);
            assert_ne!(w >> TAINT_FIELD_BITS, p.ret_prefix);
        }
    }

    #[test]
    fn pad_arg_taints_defaults_private() {
        let padded = pad_arg_taints(&[Taint::Public]);
        assert_eq!(padded[0], Taint::Public);
        assert_eq!(padded[1], Taint::Private);
        assert_eq!(padded[3], Taint::Private);
    }

    #[test]
    fn prefixes_fit_in_59_bits() {
        let p = MagicPrefixes::test_defaults();
        assert!(p.call_prefix < (1 << PREFIX_BITS));
        assert!(p.ret_prefix < (1 << PREFIX_BITS));
        let w = p.call_word([Taint::Private; 4], Taint::Private);
        assert_eq!(w >> TAINT_FIELD_BITS, p.call_prefix);
    }
}
