//! Machine registers and the calling convention.
//!
//! The ISA is an abstract 64-bit machine modelled after x64 with the Windows
//! x64 calling convention the paper uses (Section 4): four argument
//! registers, one return register, the usual caller-/callee-saved split.

/// General-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    pub const COUNT: usize = 16;

    /// All registers, in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn from_index(i: usize) -> Option<Reg> {
        Reg::ALL.get(i).copied()
    }

    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }

    /// True for registers the callee must preserve.
    pub fn is_callee_saved(self) -> bool {
        CALLEE_SAVED.contains(&self)
    }

    /// True for registers a call may clobber.
    pub fn is_caller_saved(self) -> bool {
        CALLER_SAVED.contains(&self)
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Argument registers, in order (Windows x64: rcx, rdx, r8, r9).
pub const ARG_REGS: [Reg; 4] = [Reg::Rcx, Reg::Rdx, Reg::R8, Reg::R9];

/// Return-value register.
pub const RET_REG: Reg = Reg::Rax;

/// Callee-saved registers under the Windows x64 convention.
pub const CALLEE_SAVED: [Reg; 8] = [
    Reg::Rbx,
    Reg::Rbp,
    Reg::Rdi,
    Reg::Rsi,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
];

/// Caller-saved (volatile) registers.
pub const CALLER_SAVED: [Reg; 7] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
];

/// Registers the code generator may use for holding IR values.  `rsp` is the
/// stack pointer; `r10`/`r11` are reserved as scratch registers for address
/// computation and the CFI expansions; `rax` is reserved for return values
/// and as a third scratch register.
pub const ALLOCATABLE: [Reg; 11] = [
    Reg::Rcx,
    Reg::Rdx,
    Reg::R8,
    Reg::R9,
    Reg::Rbx,
    Reg::Rbp,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R12,
    Reg::R13,
    Reg::R14,
];

/// Scratch registers reserved for the instruction selector and the CFI/check
/// expansions.
pub const SCRATCH0: Reg = Reg::R10;
pub const SCRATCH1: Reg = Reg::R11;
pub const SCRATCH2: Reg = Reg::R15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indices_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn calling_convention_sets_are_disjoint() {
        for r in CALLEE_SAVED {
            assert!(!CALLER_SAVED.contains(&r));
        }
        for r in ARG_REGS {
            assert!(r.is_caller_saved());
        }
        assert!(RET_REG.is_caller_saved());
    }

    #[test]
    fn allocatable_excludes_reserved() {
        assert!(!ALLOCATABLE.contains(&Reg::Rsp));
        assert!(!ALLOCATABLE.contains(&SCRATCH0));
        assert!(!ALLOCATABLE.contains(&SCRATCH1));
        assert!(!ALLOCATABLE.contains(&SCRATCH2));
        assert!(!ALLOCATABLE.contains(&RET_REG));
    }
}
