//! The partitioned memory layout of Section 3 (Figure 3a / 3b).
//!
//! Both the code generator (which bakes the private-stack OFFSET and segment
//! usage into the emitted code) and the VM loader (which maps the regions,
//! sets the bounds/segment registers and places stacks, heaps and globals)
//! must agree on this layout, so it lives in the shared machine crate.

use crate::program::Scheme;

/// 4 GiB, the alignment and nominal size of the segments in the segmentation
/// scheme.
pub const FOUR_GB: u64 = 4 << 30;

/// The complete memory layout for one loaded U compartment plus its trusted
/// library T.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    pub scheme: Scheme,
    /// Whether public and private data have separate (lock-step) stacks.
    pub split_stacks: bool,
    /// Whether T has its own memory (stack switching on every T call).
    pub separate_trusted: bool,

    /// Base and usable size of the public region.
    pub public_base: u64,
    pub public_size: u64,
    /// Base and usable size of the private region.
    pub private_base: u64,
    pub private_size: u64,
    /// Base and size of T's own region.
    pub trusted_base: u64,
    pub trusted_size: u64,
    /// Guard bytes below the public region and above each region (unmapped).
    pub guard_size: u64,

    /// Offsets of the sub-areas inside each region (identical in the public
    /// and the private region so the stacks stay in lock-step).
    pub globals_off: u64,
    pub heap_off: u64,
    pub heap_size: u64,
    pub stack_area_off: u64,
    pub stack_area_size: u64,
    /// Per-thread stack size (1 MiB by default, 1 MiB aligned — Section 3,
    /// multi-threading support).
    pub thread_stack_size: u64,
}

impl MemoryLayout {
    /// Size of the 1 MiB guard areas around the MPX regions.  Displacements
    /// strictly below this can be folded out of a bounds check (the
    /// `mpx-fold-displacements` optimisation); the code generator and the
    /// machine passes must agree on this limit.
    pub const MPX_GUARD_SIZE: u64 = 1 << 20;

    /// Build the layout for a scheme.
    ///
    /// * MPX scheme (Figure 3b): public and private regions are contiguous
    ///   partitions of `partition` bytes each; OFFSET (the distance between
    ///   the lock-step stacks) equals the partition size and must fit in a
    ///   31-bit displacement.
    /// * Segmentation scheme (Figure 3a): both regions are 4 GiB aligned and
    ///   40 GiB apart (4 GiB usable + 36 GiB guard), with a 2 GiB guard below
    ///   the public region.
    pub fn new(scheme: Scheme, split_stacks: bool, separate_trusted: bool) -> Self {
        // The usable area we actually touch is far below 4 GiB to keep the
        // simulation cheap; the bases follow the paper's alignment rules.
        let globals_off = 1 << 20; // +1 MiB
        let heap_off = 16 << 20; // +16 MiB
        let heap_size = 64 << 20; // 64 MiB
        let stack_area_off = 128 << 20; // +128 MiB
        let stack_area_size = 64 << 20; // 64 MiB = 64 thread stacks
        let thread_stack_size = 1 << 20;

        let (public_base, private_base, public_size, private_size, guard_size) = match scheme {
            Scheme::Mpx => {
                // Contiguous partitions; OFFSET = partition size = 256 MiB.
                let partition: u64 = 256 << 20;
                let public_base = FOUR_GB;
                (
                    public_base,
                    public_base + partition,
                    partition,
                    partition,
                    Self::MPX_GUARD_SIZE, // guard areas (Section 5.1 MPX optimisation)
                )
            }
            Scheme::Segment => {
                // 4 GiB-aligned segments, 40 GiB apart, 36 GiB guards.
                let public_base = FOUR_GB;
                let private_base = public_base + 10 * FOUR_GB;
                (public_base, private_base, FOUR_GB, FOUR_GB, 2 << 30)
            }
            Scheme::None => {
                // Single region; the "private" region aliases the public one.
                let public_base = FOUR_GB;
                (public_base, public_base, 512 << 20, 512 << 20, 1 << 20)
            }
        };

        MemoryLayout {
            scheme,
            split_stacks,
            separate_trusted,
            public_base,
            public_size,
            private_base,
            private_size,
            trusted_base: 1 << 40, // 1 TiB, far away from U
            trusted_size: 64 << 20,
            guard_size,
            globals_off,
            heap_off,
            heap_size,
            stack_area_off,
            stack_area_size,
            thread_stack_size,
        }
    }

    /// The OFFSET between the public stack top and the private stack top
    /// (Section 3): the constant added to an rsp-relative address to reach
    /// the private mirror slot.  Zero when the stacks are not split.
    pub fn private_stack_offset(&self) -> i64 {
        if !self.split_stacks {
            return 0;
        }
        (self.private_base - self.public_base) as i64
    }

    /// Segment register bases (segmentation scheme).
    pub fn fs_base(&self) -> u64 {
        self.public_base
    }

    pub fn gs_base(&self) -> u64 {
        self.private_base
    }

    /// MPX bounds register 0: the public region `[lower, upper)`.
    pub fn bnd0(&self) -> (u64, u64) {
        (self.public_base, self.public_base + self.public_size)
    }

    /// MPX bounds register 1: the private region `[lower, upper)`.
    pub fn bnd1(&self) -> (u64, u64) {
        if self.split_stacks || self.scheme == Scheme::None {
            (self.private_base, self.private_base + self.private_size)
        } else {
            // OurMPX-Sep: a single stack holds both public and private slots,
            // so the private bound is widened to cover the (public) stack
            // area.  This keeps the *number* of executed checks identical to
            // the split-stack configuration, which is what the experiment
            // measures.
            (
                self.public_base + self.stack_area_off,
                self.private_base + self.private_size,
            )
        }
    }

    /// Absolute address of the public globals area.
    pub fn public_globals_base(&self) -> u64 {
        self.public_base + self.globals_off
    }

    /// Absolute address of the private globals area.
    pub fn private_globals_base(&self) -> u64 {
        self.private_base + self.globals_off
    }

    /// Absolute address of the public heap.
    pub fn public_heap_base(&self) -> u64 {
        self.public_base + self.heap_off
    }

    pub fn private_heap_base(&self) -> u64 {
        self.private_base + self.heap_off
    }

    pub fn trusted_heap_base(&self) -> u64 {
        self.trusted_base + self.heap_off
    }

    /// Base address of thread `tid`'s public stack (1 MiB aligned; TLS lives
    /// in the first bytes, Section 3).
    pub fn thread_stack_base(&self, tid: usize) -> u64 {
        self.public_base + self.stack_area_off + tid as u64 * self.thread_stack_size
    }

    /// Initial rsp for thread `tid`: the top of its public stack, minus a
    /// small red zone, 16-byte aligned.
    pub fn initial_rsp(&self, tid: usize) -> u64 {
        self.thread_stack_base(tid) + self.thread_stack_size - 64
    }

    /// TLS base for the thread owning the given rsp: the paper masks the low
    /// 20 bits of rsp to find the start of the 1 MiB thread stack.
    pub fn tls_base_for_rsp(&self, rsp: u64) -> u64 {
        rsp & !(self.thread_stack_size - 1)
    }

    /// Number of thread stacks that fit in the stack area.
    pub fn max_threads(&self) -> usize {
        (self.stack_area_size / self.thread_stack_size) as usize
    }

    /// True if `[lo, hi)` contains `addr..addr+len`.  `addr` and `len` are
    /// guest-controlled, so the end address must not wrap around u64: a
    /// wrapped range would compare below `hi` and falsely pass.
    fn range_contains(lo: u64, hi: u64, addr: u64, len: u64) -> bool {
        match addr.checked_add(len) {
            Some(end) => addr >= lo && end <= hi,
            None => false,
        }
    }

    /// True if `addr..addr+len` lies entirely inside the public region.
    pub fn in_public(&self, addr: u64, len: u64) -> bool {
        Self::range_contains(
            self.public_base,
            self.public_base + self.public_size,
            addr,
            len,
        )
    }

    /// True if `addr..addr+len` lies entirely inside the private region.
    pub fn in_private(&self, addr: u64, len: u64) -> bool {
        Self::range_contains(
            self.private_base,
            self.private_base + self.private_size,
            addr,
            len,
        )
    }

    /// True if `addr..addr+len` lies inside the window the instrumentation
    /// allows private data to inhabit: exactly the private region with split
    /// stacks, widened over the shared stack area without (the [`bnd1`]
    /// range).  The trusted wrappers must use this rather than
    /// [`in_private`], or stack-allocated private buffers are rejected under
    /// the single-stack configuration.
    ///
    /// [`bnd1`]: MemoryLayout::bnd1
    /// [`in_private`]: MemoryLayout::in_private
    pub fn in_private_window(&self, addr: u64, len: u64) -> bool {
        let (lo, hi) = self.bnd1();
        Self::range_contains(lo, hi, addr, len)
    }

    /// True if `addr..addr+len` lies inside T's region.
    pub fn in_trusted(&self, addr: u64, len: u64) -> bool {
        Self::range_contains(
            self.trusted_base,
            self.trusted_base + self.trusted_size,
            addr,
            len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpx_layout_offset_fits_in_displacement() {
        let l = MemoryLayout::new(Scheme::Mpx, true, true);
        let off = l.private_stack_offset();
        assert!(off > 0);
        assert!(
            off <= i32::MAX as i64,
            "OFFSET must fit a 31-bit displacement"
        );
        assert_eq!(l.private_base, l.public_base + l.public_size);
    }

    #[test]
    fn segment_layout_is_4gb_aligned_and_40gb_apart() {
        let l = MemoryLayout::new(Scheme::Segment, true, true);
        assert_eq!(l.public_base % FOUR_GB, 0);
        assert_eq!(l.private_base % FOUR_GB, 0);
        assert_eq!(l.private_base - l.public_base, 40 << 30);
        assert_eq!(l.fs_base(), l.public_base);
        assert_eq!(l.gs_base(), l.private_base);
    }

    #[test]
    fn lock_step_stacks() {
        let l = MemoryLayout::new(Scheme::Mpx, true, true);
        let off = l.private_stack_offset() as u64;
        let pub_rsp = l.initial_rsp(0);
        assert!(l.in_public(pub_rsp, 8));
        assert!(l.in_private(pub_rsp + off, 8));
    }

    #[test]
    fn unsplit_stacks_have_zero_offset_and_widened_bnd1() {
        let l = MemoryLayout::new(Scheme::Mpx, false, true);
        assert_eq!(l.private_stack_offset(), 0);
        let (lo, hi) = l.bnd1();
        assert!(lo <= l.initial_rsp(0));
        assert!(hi >= l.private_base);
    }

    #[test]
    fn regions_are_disjoint_from_trusted() {
        for scheme in [Scheme::None, Scheme::Mpx, Scheme::Segment] {
            let l = MemoryLayout::new(scheme, true, true);
            assert!(!l.in_trusted(l.public_base, 8));
            assert!(!l.in_public(l.trusted_base, 8));
            assert!(l.in_trusted(l.trusted_heap_base(), 8));
        }
    }

    #[test]
    fn thread_stacks_are_aligned_and_distinct() {
        let l = MemoryLayout::new(Scheme::Segment, true, true);
        for t in 0..4 {
            let base = l.thread_stack_base(t);
            assert_eq!(base % l.thread_stack_size, 0);
            assert_eq!(l.tls_base_for_rsp(l.initial_rsp(t)), base);
        }
        assert!(l.max_threads() >= 6);
    }

    #[test]
    fn region_checks_reject_wrapping_ranges() {
        // Guest-controlled addr/len must not wrap the end address around
        // u64 and falsely pass (or panic the host under debug assertions).
        let l = MemoryLayout::new(Scheme::Mpx, false, true);
        assert!(!l.in_public(u64::MAX, 32));
        assert!(!l.in_private(u64::MAX, 32));
        assert!(!l.in_private_window(u64::MAX, 32));
        assert!(!l.in_trusted(u64::MAX, 32));
    }

    #[test]
    fn membership_checks() {
        let l = MemoryLayout::new(Scheme::Mpx, true, true);
        assert!(l.in_public(l.public_globals_base(), 64));
        assert!(l.in_private(l.private_heap_base(), 64));
        assert!(!l.in_public(l.private_base, 8));
        assert!(!l.in_private(l.public_base, 8));
    }
}
