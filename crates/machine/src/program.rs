//! Programs and binaries.
//!
//! A [`Program`] is the structured (assembler-level) form of one compiled U
//! compartment: the instruction stream, the symbol table, the globals it
//! needs relocated, and the trusted extern (T) interface it links against.
//!
//! A [`Binary`] is the encoded form: a flat sequence of 64-bit code words
//! plus the load-time metadata (the "headers").  ConfVerify consumes only the
//! binary — it re-disassembles the words and never trusts the structured
//! program the compiler produced.

use confllvm_minic::Taint;

use crate::encode;
use crate::inst::MInst;
use crate::magic::MagicPrefixes;

/// Which memory-partitioning scheme a binary was compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheme {
    /// No partitioning checks (baseline configurations).
    #[default]
    None,
    /// Intel-MPX style bound checks (Figure 3b).
    Mpx,
    /// Segment-register based partitioning (Figure 3a).
    Segment,
}

impl Scheme {
    pub fn name(self) -> &'static str {
        match self {
            Scheme::None => "none",
            Scheme::Mpx => "mpx",
            Scheme::Segment => "segment",
        }
    }
}

/// A function symbol in the program.
#[derive(Debug, Clone)]
pub struct FuncSym {
    pub name: String,
    /// Word index of the function's magic word (None when CFI is disabled).
    pub magic_word: Option<u32>,
    /// Word index of the first executable instruction.
    pub entry_word: u32,
    /// Taints of the four argument registers (unused ones conservatively
    /// private) and of the return register, as encoded in the magic word.
    pub arg_taints: [Taint; 4],
    pub ret_taint: Taint,
}

/// A global variable to be placed by the loader.
#[derive(Debug, Clone)]
pub struct GlobalSpec {
    pub name: String,
    pub size: u64,
    pub taint: Taint,
    pub init: Vec<u8>,
}

/// One entry of the trusted-library (T) interface.  These signatures are
/// trusted: the loader installs a wrapper for each and the verifier uses the
/// declared taints when checking calls into T.
#[derive(Debug, Clone)]
pub struct ExternSpec {
    pub name: String,
    pub param_taints: Vec<Taint>,
    pub param_pointee_taints: Vec<Taint>,
    pub param_is_pointer: Vec<bool>,
    pub ret_taint: Taint,
    pub has_ret_value: bool,
}

impl ExternSpec {
    /// The taints the four argument registers must have at a call to this
    /// extern (missing arguments are conservatively private).
    pub fn arg_reg_taints(&self) -> [Taint; 4] {
        crate::magic::pad_arg_taints(&self.param_taints)
    }
}

/// The structured program form.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub name: String,
    pub insts: Vec<MInst>,
    pub functions: Vec<FuncSym>,
    pub globals: Vec<GlobalSpec>,
    pub externs: Vec<ExternSpec>,
    /// Index (into `functions`) of the entry function (`main`).
    pub entry_function: usize,
    /// Magic prefixes chosen at link time (also present without CFI so the
    /// field is always meaningful; unused in that case).
    pub prefixes: MagicPrefixes,
    /// Scheme this program was instrumented for.
    pub scheme: Scheme,
    /// Whether taint-aware CFI instrumentation is present.
    pub cfi: bool,
    /// Whether U and T memories are separated (stack switching on T calls).
    pub separate_trusted_memory: bool,
    /// Whether public and private data get separate stacks.
    pub split_stacks: bool,
}

impl Program {
    /// Word offset of each instruction, computed from the fixed encoding
    /// lengths.
    pub fn word_offsets(&self) -> Vec<u32> {
        let mut offsets = Vec::with_capacity(self.insts.len());
        let mut w = 0u32;
        for inst in &self.insts {
            offsets.push(w);
            w += encode::encoded_len(inst);
        }
        offsets
    }

    /// Total number of code words.
    pub fn code_words(&self) -> u32 {
        self.insts.iter().map(encode::encoded_len).sum()
    }

    pub fn function(&self, name: &str) -> Option<&FuncSym> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Encode into a binary.
    pub fn encode(&self) -> Binary {
        encode::encode_program(self)
    }
}

/// Load-time metadata carried alongside the code words.
#[derive(Debug, Clone, Default)]
pub struct BinaryHeader {
    pub name: String,
    pub globals: Vec<GlobalSpec>,
    pub externs: Vec<ExternSpec>,
    /// Word index of the program entry point.
    pub entry_word: u32,
    pub prefixes: MagicPrefixes,
    pub scheme: Scheme,
    pub cfi: bool,
    pub separate_trusted_memory: bool,
    pub split_stacks: bool,
    /// Function symbols (names + entry words).  Used by the loader and by
    /// diagnostics; ConfVerify re-derives procedure boundaries from the magic
    /// words instead of trusting this table.
    pub functions: Vec<FuncSym>,
}

impl Default for MagicPrefixes {
    fn default() -> Self {
        MagicPrefixes::test_defaults()
    }
}

/// The encoded binary: flat code words plus the header.
#[derive(Debug, Clone)]
pub struct Binary {
    pub words: Vec<u64>,
    pub header: BinaryHeader,
}

impl Binary {
    /// Decode back into instructions (word offset, instruction) pairs.
    pub fn decode(&self) -> Result<Vec<(u32, MInst)>, encode::DecodeError> {
        encode::decode_words(&self.words, &self.header.prefixes)
    }

    /// Code size in bytes (8 bytes per word), used in code-size reports.
    pub fn code_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::MInst;
    use crate::reg::Reg;

    #[test]
    fn word_offsets_account_for_magic_words() {
        let prefixes = MagicPrefixes::test_defaults();
        let magic = prefixes.call_word([Taint::Private; 4], Taint::Private);
        let prog = Program {
            insts: vec![
                MInst::MagicWord { value: magic },
                MInst::MovImm {
                    dst: Reg::Rax,
                    imm: 7,
                },
                MInst::Ret,
            ],
            prefixes,
            ..Default::default()
        };
        let offsets = prog.word_offsets();
        assert_eq!(offsets, vec![0, 1, 3]);
        assert_eq!(prog.code_words(), 5);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Mpx.name(), "mpx");
        assert_eq!(Scheme::Segment.name(), "segment");
        assert_eq!(Scheme::None.name(), "none");
    }
}
