//! # confllvm-machine
//!
//! The abstract, x64-flavoured machine layer of the ConfLLVM reproduction:
//!
//! * [`reg`] — registers and the Windows-x64-style calling convention,
//! * [`operand`] — `[base + index*scale + disp]` memory operands with
//!   optional `fs`/`gs` segment prefixes and 32-bit register restriction,
//! * [`inst`] — the instruction set, including MPX bound checks, magic data
//!   words, `LoadCode` and register-indirect jumps for taint-aware CFI, and
//!   `CallExternal` for calls into the trusted library T,
//! * [`magic`] — the 59-bit magic prefixes and taint-bit encodings of
//!   Section 4,
//! * [`program`] / [`encode`] — structured programs, their 64-bit-word binary
//!   encoding, and the decoder used by both the VM loader and ConfVerify.
//!
//! This crate deliberately knows nothing about *how* instrumentation is
//! generated (that is `confllvm-codegen`) or *checked* (that is
//! `confllvm-verify`); it only defines the shared vocabulary.

pub mod encode;
pub mod inst;
pub mod layout;
pub mod magic;
pub mod operand;
pub mod program;
pub mod reg;

pub use encode::{decode_words, encode_inst, encoded_len, DecodeError};
pub use inst::{trap, AluOp, BndReg, Cond, MInst, RegImm};
pub use layout::MemoryLayout;
pub use magic::{find_unique_prefixes, pad_arg_taints, MagicPrefixes};
pub use operand::{MemOperand, Seg};
pub use program::{Binary, BinaryHeader, ExternSpec, FuncSym, GlobalSpec, Program, Scheme};
pub use reg::{
    Reg, ALLOCATABLE, ARG_REGS, CALLEE_SAVED, CALLER_SAVED, RET_REG, SCRATCH0, SCRATCH1, SCRATCH2,
};

/// Re-export of the taint lattice shared with the frontend.
pub use confllvm_minic::Taint;
