//! Diagnostics produced by the mini-C frontend.

use crate::ast::Span;

/// Which phase of the frontend produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Sema,
}

/// An error raised while lexing, parsing or analysing a mini-C program.
#[derive(Debug, Clone)]
pub struct FrontendError {
    pub phase: Phase,
    pub message: String,
    pub span: Span,
}

impl FrontendError {
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        FrontendError {
            phase: Phase::Lex,
            message: message.into(),
            span,
        }
    }

    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        FrontendError {
            phase: Phase::Parse,
            message: message.into(),
            span,
        }
    }

    pub fn sema(message: impl Into<String>, span: Span) -> Self {
        FrontendError {
            phase: Phase::Sema,
            message: message.into(),
            span,
        }
    }
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "semantic",
        };
        write!(f, "{} error at {}: {}", phase, self.span, self.message)
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_location() {
        let e = FrontendError::sema("bad taint", Span::new(10, 3));
        let s = e.to_string();
        assert!(s.contains("semantic"));
        assert!(s.contains("10:3"));
        assert!(s.contains("bad taint"));
    }
}
