//! Abstract syntax tree for mini-C, the source language accepted by the
//! ConfLLVM reproduction.
//!
//! Mini-C is an (intentionally) unsafe C-like language: raw pointers, pointer
//! arithmetic, casts, fixed-size arrays, structs, globals, and indirect calls
//! through function pointers are all supported.  The single extension over
//! plain C is the `private` type qualifier of the paper (Section 2), which may
//! appear on globals, parameters, struct fields and local declarations.

use crate::types::{Taint, Type};

/// A source location, used for diagnostics.  Mini-C programs are small enough
/// that a line/column pair is sufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A complete translation unit.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub structs: Vec<StructDef>,
    pub globals: Vec<GlobalDef>,
    pub externs: Vec<ExternDecl>,
    pub functions: Vec<FunctionDef>,
}

/// A struct definition: `struct name { fields };`
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// A global variable definition, optionally initialised with a constant
/// expression (integer literals and string literals only).
#[derive(Debug, Clone)]
pub struct GlobalDef {
    pub name: String,
    pub ty: Type,
    pub init: Option<Expr>,
    pub span: Span,
}

/// A declaration of a trusted (T) function: `extern int send(int fd, char *buf, int n);`
///
/// Extern functions are the only interface between the untrusted compartment
/// U and the trusted library T.  Their signatures, including `private`
/// qualifiers, are trusted (Section 2, "Partitioning U's memory").
#[derive(Debug, Clone)]
pub struct ExternDecl {
    pub name: String,
    pub params: Vec<ParamDecl>,
    pub ret: Type,
    pub span: Span,
}

/// A function defined inside U.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    pub name: String,
    pub params: Vec<ParamDecl>,
    pub ret: Type,
    pub body: Block,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct ParamDecl {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Local declaration `type name [= init];` (including local arrays).
    Decl {
        name: String,
        ty: Type,
        init: Option<Expr>,
        span: Span,
    },
    /// Expression statement (calls, assignments, ...).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
        span: Span,
    },
    /// `while (cond) { .. }`
    While {
        cond: Expr,
        body: Block,
        span: Span,
    },
    /// `for (init; cond; step) { .. }` — all three clauses optional.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Block,
        span: Span,
    },
    /// `return;` or `return e;`
    Return {
        value: Option<Expr>,
        span: Span,
    },
    Break {
        span: Span,
    },
    Continue {
        span: Span,
    },
    /// Nested block.
    Block(Block),
}

impl Stmt {
    /// The source location of the statement, for diagnostics.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Break { span }
            | Stmt::Continue { span } => *span,
            Stmt::Expr(e) => e.span,
            Stmt::Block(b) => b.stmts.first().map(|s| s.span()).unwrap_or_default(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    LogicalAnd,
    LogicalOr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// True for the six comparison operators (which always produce a public
    /// 0/1 value *derived from* their operands, so taint still propagates).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e`.
    Not,
    /// Bitwise not `~e`.
    BitNot,
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&e`.
    AddrOf,
}

/// Expressions, annotated with their source location.  The resolved type of
/// an expression is computed during semantic analysis and cached by the
/// lowering pass; the AST itself stays untyped.
#[derive(Debug, Clone)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Character literal (stored as its byte value).
    CharLit(u8),
    /// String literal; lowered to a public global byte array.
    StrLit(String),
    /// Variable reference (local, parameter, global or function name).
    Ident(String),
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Assignment `lhs = rhs` (lhs must be an lvalue).
    Assign { lhs: Box<Expr>, rhs: Box<Expr> },
    /// Direct or indirect call.  `callee` is an arbitrary expression; if it
    /// resolves to a function name the call is direct, otherwise it is an
    /// indirect call through a function pointer.
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// Array indexing `base[index]` (sugar for `*(base + index)`).
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Struct member access `base.field`.
    Member { base: Box<Expr>, field: String },
    /// Struct member access through a pointer, `base->field`.
    Arrow { base: Box<Expr>, field: String },
    /// C-style cast `(type) expr`.
    Cast { ty: Type, expr: Box<Expr> },
    /// `sizeof(type)`.
    SizeOf(Type),
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Convenience constructor for integer literals in tests and builders.
    pub fn int(v: i64) -> Self {
        Expr::new(ExprKind::IntLit(v), Span::default())
    }

    /// Convenience constructor for identifier references.
    pub fn ident(name: &str) -> Self {
        Expr::new(ExprKind::Ident(name.to_string()), Span::default())
    }

    /// True if this expression can syntactically appear as the target of an
    /// assignment or of `&`.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Ident(_)
                | ExprKind::Index { .. }
                | ExprKind::Member { .. }
                | ExprKind::Arrow { .. }
                | ExprKind::Unary {
                    op: UnOp::Deref,
                    ..
                }
        )
    }
}

impl Program {
    /// Look up a struct definition by name.
    pub fn find_struct(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Look up a function defined in U.
    pub fn find_function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up a trusted (extern) declaration.
    pub fn find_extern(&self, name: &str) -> Option<&ExternDecl> {
        self.externs.iter().find(|e| e.name == name)
    }

    /// Look up a global definition.
    pub fn find_global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Count of annotations (occurrences of `private`) across all top-level
    /// definitions.  Used by the porting-effort experiment (Section 7.2) to
    /// report how much a workload had to be annotated.
    pub fn annotation_count(&self) -> usize {
        fn count_ty(ty: &Type) -> usize {
            let mut n = usize::from(ty.taint == Taint::Private);
            if let Some(inner) = ty.pointee() {
                n += count_ty(inner);
            }
            if let Some(elem) = ty.element() {
                n += count_ty(elem);
            }
            n
        }
        let mut n = 0;
        for g in &self.globals {
            n += count_ty(&g.ty);
        }
        for e in &self.externs {
            n += count_ty(&e.ret);
            n += e.params.iter().map(|p| count_ty(&p.ty)).sum::<usize>();
        }
        for f in &self.functions {
            n += count_ty(&f.ret);
            n += f.params.iter().map(|p| count_ty(&p.ty)).sum::<usize>();
        }
        for s in &self.structs {
            n += s.fields.iter().map(|fd| count_ty(&fd.ty)).sum::<usize>();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn lvalue_classification() {
        assert!(Expr::ident("x").is_lvalue());
        assert!(!Expr::int(4).is_lvalue());
        let deref = Expr::new(
            ExprKind::Unary {
                op: UnOp::Deref,
                operand: Box::new(Expr::ident("p")),
            },
            Span::default(),
        );
        assert!(deref.is_lvalue());
        let addr = Expr::new(
            ExprKind::Unary {
                op: UnOp::AddrOf,
                operand: Box::new(Expr::ident("p")),
            },
            Span::default(),
        );
        assert!(!addr.is_lvalue());
    }

    #[test]
    fn comparison_ops() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn annotation_counting() {
        let mut p = Program::default();
        p.globals.push(GlobalDef {
            name: "key".into(),
            ty: Type::private_int(),
            init: None,
            span: Span::default(),
        });
        p.globals.push(GlobalDef {
            name: "counter".into(),
            ty: Type::int(),
            init: None,
            span: Span::default(),
        });
        p.externs.push(ExternDecl {
            name: "decrypt".into(),
            params: vec![
                ParamDecl {
                    name: "src".into(),
                    ty: Type::ptr(Type::char()),
                    span: Span::default(),
                },
                ParamDecl {
                    name: "dst".into(),
                    ty: Type::ptr(Type::private_char()),
                    span: Span::default(),
                },
            ],
            ret: Type::void(),
            span: Span::default(),
        });
        assert_eq!(p.annotation_count(), 2);
    }
}
