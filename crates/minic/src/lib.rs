//! # confllvm-minic
//!
//! The mini-C frontend of the ConfLLVM reproduction.
//!
//! Mini-C is a small but deliberately *unsafe* C-like language: raw pointers,
//! pointer arithmetic, fixed-size buffers, casts, structs and indirect calls
//! are all supported, and nothing prevents buffer overflows — that is the
//! point.  The only extension over plain C is the `private` type qualifier of
//! the paper (Section 2), used to mark sensitive data in top-level
//! definitions: globals, function signatures, extern (trusted-library)
//! signatures, and struct fields.
//!
//! The crate exposes:
//! * [`lexer`] / [`parser`] — text to AST,
//! * [`ast`] — the AST,
//! * [`types`] — the type representation with the two-point taint lattice,
//! * [`sema`] — symbol resolution, struct layout and loose type checking.
//!
//! ```
//! use confllvm_minic::{parse, Sema};
//!
//! let prog = parse("private int secret; int get() { return secret; }").unwrap();
//! let sema = Sema::analyze(&prog).unwrap();
//! assert!(sema.signature("get").is_some());
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod types;

pub use ast::{Block, Expr, ExprKind, ExternDecl, FunctionDef, GlobalDef, Program, Span, Stmt};
pub use error::FrontendError;
pub use parser::{parse, parse_expr};
pub use sema::{Sema, Signature, StructLayout, WORD_SIZE};
pub use types::{Taint, Type, TypeKind};
