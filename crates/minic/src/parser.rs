//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::error::FrontendError;
use crate::lexer::{lex, SpannedTok, Tok};
use crate::types::{Taint, Type};

/// Parse a full translation unit from source text.
pub fn parse(src: &str) -> Result<Program, FrontendError> {
    let toks = lex(src)?;
    Parser::new(toks).program()
}

/// Parse a single expression; used in unit tests and by the attack harness to
/// build small snippets.
pub fn parse_expr(src: &str) -> Result<Expr, FrontendError> {
    let toks = lex(src)?;
    let mut p = Parser::new(toks);
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<SpannedTok>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek_at(&self, offset: usize) -> &Tok {
        &self.toks[(self.pos + offset).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), FrontendError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {:?}, found {}",
                tok,
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, FrontendError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn error(&self, msg: impl Into<String>) -> FrontendError {
        FrontendError::parse(msg, self.span())
    }

    // ----- top level -------------------------------------------------------

    fn program(&mut self) -> Result<Program, FrontendError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::KwStruct if *self.peek_at(2) == Tok::LBrace => {
                    prog.structs.push(self.struct_def()?)
                }
                Tok::KwExtern => prog.externs.push(self.extern_decl()?),
                _ => self.global_or_function(&mut prog)?,
            }
        }
        Ok(prog)
    }

    fn struct_def(&mut self) -> Result<StructDef, FrontendError> {
        let span = self.span();
        self.expect(Tok::KwStruct)?;
        let name = self.expect_ident()?;
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(Tok::RBrace) {
            let fspan = self.span();
            let base = self.type_spec()?;
            let (fname, fty) = self.declarator(base)?;
            self.expect(Tok::Semi)?;
            fields.push(FieldDef {
                name: fname,
                ty: fty,
                span: fspan,
            });
        }
        self.expect(Tok::Semi)?;
        Ok(StructDef { name, fields, span })
    }

    fn extern_decl(&mut self) -> Result<ExternDecl, FrontendError> {
        let span = self.span();
        self.expect(Tok::KwExtern)?;
        let base = self.type_spec()?;
        let (name, ret) = self.declarator(base)?;
        self.expect(Tok::LParen)?;
        let params = self.param_list()?;
        self.expect(Tok::Semi)?;
        Ok(ExternDecl {
            name,
            params,
            ret,
            span,
        })
    }

    fn global_or_function(&mut self, prog: &mut Program) -> Result<(), FrontendError> {
        let span = self.span();
        let base = self.type_spec()?;
        let (name, ty) = self.declarator(base)?;
        match self.peek() {
            Tok::LParen => {
                self.bump();
                let params = self.param_list()?;
                if self.eat(Tok::Semi) {
                    // Forward declaration of a U function: record nothing, the
                    // definition will follow.
                    return Ok(());
                }
                let body = self.block()?;
                prog.functions.push(FunctionDef {
                    name,
                    params,
                    ret: ty,
                    body,
                    span,
                });
            }
            _ => {
                let init = if self.eat(Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                prog.globals.push(GlobalDef {
                    name,
                    ty,
                    init,
                    span,
                });
            }
        }
        Ok(())
    }

    fn param_list(&mut self) -> Result<Vec<ParamDecl>, FrontendError> {
        let mut params = Vec::new();
        if self.eat(Tok::RParen) {
            return Ok(params);
        }
        // `void` as the sole parameter means "no parameters".
        if *self.peek() == Tok::KwVoid && *self.peek_at(1) == Tok::RParen {
            self.bump();
            self.bump();
            return Ok(params);
        }
        loop {
            let span = self.span();
            let base = self.type_spec()?;
            let (name, ty) = self.declarator(base)?;
            // Array parameters decay to pointers, as in C.
            let ty = ty.decay();
            params.push(ParamDecl { name, ty, span });
            if self.eat(Tok::RParen) {
                break;
            }
            self.expect(Tok::Comma)?;
        }
        Ok(params)
    }

    // ----- types -----------------------------------------------------------

    /// True if the current token can start a type specifier.
    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct | Tok::KwPrivate
        )
    }

    /// Parse `[private] (int|char|void|struct name)` and return the base type
    /// with the qualifier attached to it.
    fn type_spec(&mut self) -> Result<Type, FrontendError> {
        let taint = if self.eat(Tok::KwPrivate) {
            Taint::Private
        } else {
            Taint::Public
        };
        let base = match self.bump() {
            Tok::KwInt => Type::int(),
            Tok::KwChar => Type::char(),
            Tok::KwVoid => Type::void(),
            Tok::KwStruct => {
                let name = self.expect_ident()?;
                Type::strukt(&name)
            }
            other => return Err(self.error(format!("expected a type, found {}", other.describe()))),
        };
        Ok(base.with_base_taint(taint))
    }

    /// Parse a declarator on top of `base`: pointer stars, a name or a
    /// function-pointer declarator, and optional array brackets.
    fn declarator(&mut self, base: Type) -> Result<(String, Type), FrontendError> {
        let mut ty = base;
        while self.eat(Tok::Star) {
            ty = Type::ptr(ty);
        }
        // Function pointer: `ret (*name)(params)`.
        if *self.peek() == Tok::LParen && *self.peek_at(1) == Tok::Star {
            self.bump(); // (
            self.bump(); // *
            let name = self.expect_ident()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::LParen)?;
            let mut params = Vec::new();
            if !self.eat(Tok::RParen) {
                loop {
                    let pbase = self.type_spec()?;
                    let pty = self.abstract_declarator(pbase)?;
                    params.push(pty.decay());
                    if self.eat(Tok::RParen) {
                        break;
                    }
                    self.expect(Tok::Comma)?;
                }
            }
            return Ok((name, Type::func_ptr(params, ty)));
        }
        let name = self.expect_ident()?;
        // Array suffixes (only the outermost dimension is kept; nested arrays
        // are flattened left to right).
        let mut dims = Vec::new();
        while self.eat(Tok::LBracket) {
            if self.eat(Tok::RBracket) {
                // `type name[]` in a parameter position: decays to pointer.
                ty = Type::ptr(ty);
                return Ok((name, ty));
            }
            match self.bump() {
                Tok::Int(n) if n >= 0 => dims.push(n as u64),
                other => {
                    return Err(
                        self.error(format!("expected array length, found {}", other.describe()))
                    )
                }
            }
            self.expect(Tok::RBracket)?;
        }
        for d in dims.into_iter().rev() {
            ty = Type::array(ty, d);
        }
        Ok((name, ty))
    }

    /// A declarator without a name (used for parameter types inside
    /// function-pointer declarators and for casts / sizeof).
    fn abstract_declarator(&mut self, base: Type) -> Result<Type, FrontendError> {
        let mut ty = base;
        while self.eat(Tok::Star) {
            ty = Type::ptr(ty);
        }
        // An optional identifier (parameter name) is permitted and ignored.
        if let Tok::Ident(_) = self.peek() {
            self.bump();
        }
        Ok(ty)
    }

    // ----- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Block, FrontendError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        match self.peek() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_blk = self.block_or_single()?;
                let else_blk = if self.eat(Tok::KwElse) {
                    Some(self.block_or_single()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                    span,
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body, span })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.eat(Tok::Semi) {
                    None
                } else {
                    let s = if self.starts_type() {
                        self.decl_stmt()?
                    } else {
                        let e = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Stmt::Expr(e)
                    };
                    Some(Box::new(s))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                })
            }
            Tok::KwReturn => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break { span })
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue { span })
            }
            _ if self.starts_type() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Either a braced block or a single statement (for `if (c) stmt;`).
    fn block_or_single(&mut self) -> Result<Block, FrontendError> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.stmt()?],
            })
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        let base = self.type_spec()?;
        let (name, ty) = self.declarator(base)?;
        let init = if self.eat(Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(Stmt::Decl {
            name,
            ty,
            init,
            span,
        })
    }

    // ----- expressions -----------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.logical_or()?;
        let span = self.span();
        match self.peek() {
            Tok::Assign => {
                self.bump();
                let rhs = self.assignment()?;
                Ok(Expr::new(
                    ExprKind::Assign {
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    span,
                ))
            }
            Tok::PlusAssign | Tok::MinusAssign => {
                let op = if *self.peek() == Tok::PlusAssign {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                self.bump();
                let rhs = self.assignment()?;
                let combined = Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(lhs.clone()),
                        rhs: Box::new(rhs),
                    },
                    span,
                );
                Ok(Expr::new(
                    ExprKind::Assign {
                        lhs: Box::new(lhs),
                        rhs: Box::new(combined),
                    },
                    span,
                ))
            }
            _ => Ok(lhs),
        }
    }

    fn binary_level(
        &mut self,
        ops: &[(Tok, BinOp)],
        next: fn(&mut Self) -> Result<Expr, FrontendError>,
    ) -> Result<Expr, FrontendError> {
        let mut lhs = next(self)?;
        loop {
            let span = self.span();
            let Some((_, op)) = ops.iter().find(|(t, _)| t == self.peek()) else {
                return Ok(lhs);
            };
            let op = *op;
            self.bump();
            let rhs = next(self)?;
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
    }

    fn logical_or(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[(Tok::PipePipe, BinOp::LogicalOr)], Self::logical_and)
    }

    fn logical_and(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[(Tok::AmpAmp, BinOp::LogicalAnd)], Self::bit_or)
    }

    fn bit_or(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[(Tok::Pipe, BinOp::Or)], Self::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[(Tok::Caret, BinOp::Xor)], Self::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[(Tok::Amp, BinOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(
            &[(Tok::EqEq, BinOp::Eq), (Tok::NotEq, BinOp::Ne)],
            Self::relational,
        )
    }

    fn relational(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(
            &[
                (Tok::Lt, BinOp::Lt),
                (Tok::Le, BinOp::Le),
                (Tok::Gt, BinOp::Gt),
                (Tok::Ge, BinOp::Ge),
            ],
            Self::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
            Self::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
            Self::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(
            &[
                (Tok::Star, BinOp::Mul),
                (Tok::Slash, BinOp::Div),
                (Tok::Percent, BinOp::Rem),
            ],
            Self::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        let span = self.span();
        let op = match self.peek() {
            Tok::Minus => Some(UnOp::Neg),
            Tok::Bang => Some(UnOp::Not),
            Tok::Tilde => Some(UnOp::BitNot),
            Tok::Star => Some(UnOp::Deref),
            Tok::Amp => Some(UnOp::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        // Cast: `(type) unary`.
        if *self.peek() == Tok::LParen && self.type_starts_at(1) {
            self.bump();
            let base = self.type_spec()?;
            let ty = self.abstract_declarator(base)?;
            self.expect(Tok::RParen)?;
            let inner = self.unary()?;
            return Ok(Expr::new(
                ExprKind::Cast {
                    ty,
                    expr: Box::new(inner),
                },
                span,
            ));
        }
        if *self.peek() == Tok::KwSizeof {
            self.bump();
            self.expect(Tok::LParen)?;
            let base = self.type_spec()?;
            let ty = self.abstract_declarator(base)?;
            self.expect(Tok::RParen)?;
            return Ok(Expr::new(ExprKind::SizeOf(ty), span));
        }
        self.postfix()
    }

    fn type_starts_at(&self, offset: usize) -> bool {
        matches!(
            self.peek_at(offset),
            Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct | Tok::KwPrivate
        )
    }

    fn postfix(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.primary()?;
        loop {
            let span = self.span();
            match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                    e = Expr::new(
                        ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                        span,
                    );
                }
                Tok::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::new(
                        ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    );
                }
                Tok::Dot => {
                    self.bump();
                    let field = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            field,
                        },
                        span,
                    );
                }
                Tok::Arrow => {
                    self.bump();
                    let field = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Arrow {
                            base: Box::new(e),
                            field,
                        },
                        span,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        let span = self.span();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::new(ExprKind::IntLit(v), span)),
            Tok::Char(c) => Ok(Expr::new(ExprKind::CharLit(c), span)),
            Tok::Str(s) => Ok(Expr::new(ExprKind::StrLit(s), span)),
            Tok::Ident(name) => Ok(Expr::new(ExprKind::Ident(name), span)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Taint;

    #[test]
    fn parse_simple_function() {
        let prog = parse("int add(int a, int b) {\n  return a + b;\n}\n").unwrap();
        assert_eq!(prog.functions.len(), 1);
        let f = &prog.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.stmts.len(), 1);
    }

    #[test]
    fn parse_private_annotations() {
        let prog = parse(
            "extern void decrypt(char *c, private char *d);\n\
             private int secret_key;\n\
             int handle(char *uname, private char *upasswd) { return 0; }\n",
        )
        .unwrap();
        assert_eq!(prog.externs.len(), 1);
        let dec = &prog.externs[0];
        assert_eq!(dec.params[1].ty.pointee().unwrap().taint, Taint::Private);
        assert_eq!(prog.globals[0].ty.taint, Taint::Private);
        let f = &prog.functions[0];
        assert_eq!(f.params[1].ty.pointee().unwrap().taint, Taint::Private);
        assert_eq!(f.params[0].ty.pointee().unwrap().taint, Taint::Public);
    }

    #[test]
    fn parse_struct_and_member_access() {
        let prog = parse(
            "struct point { int x; int y; };\n\
             int get(struct point *p) { return p->x + p->y; }\n",
        )
        .unwrap();
        assert_eq!(prog.structs.len(), 1);
        assert_eq!(prog.structs[0].fields.len(), 2);
    }

    #[test]
    fn parse_arrays_and_indexing() {
        let prog = parse(
            "int sum(int n) {\n  char buf[512];\n  int i;\n  int s = 0;\n  for (i = 0; i < n; i = i + 1) { s = s + buf[i]; }\n  return s;\n}\n",
        )
        .unwrap();
        let f = &prog.functions[0];
        match &f.body.stmts[0] {
            Stmt::Decl { ty, .. } => assert!(ty.is_array()),
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn parse_function_pointer() {
        let prog =
            parse("int apply(int (*fp)(int, int), int a, int b) { return fp(a, b); }\n").unwrap();
        let f = &prog.functions[0];
        assert!(f.params[0].ty.is_func_ptr());
    }

    #[test]
    fn parse_casts_and_sizeof() {
        let e = parse_expr("(private char *) p").unwrap();
        match e.kind {
            ExprKind::Cast { ty, .. } => {
                assert_eq!(ty.pointee().unwrap().taint, Taint::Private)
            }
            other => panic!("expected cast, got {other:?}"),
        }
        let e = parse_expr("sizeof(int)").unwrap();
        assert!(matches!(e.kind, ExprKind::SizeOf(_)));
    }

    #[test]
    fn parse_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => match rhs.kind {
                ExprKind::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("expected mul on rhs, got {other:?}"),
            },
            other => panic!("expected add at top, got {other:?}"),
        }
    }

    #[test]
    fn parse_if_else_and_while() {
        let prog = parse(
            "int f(int x) { if (x > 0) { return 1; } else { return 0; } }\n\
             int g(int x) { while (x) x = x - 1; return x; }\n",
        )
        .unwrap();
        assert_eq!(prog.functions.len(), 2);
    }

    #[test]
    fn parse_webserver_example() {
        // The running example of the paper (Figure 1), adapted to mini-C.
        let src = r#"
            extern int recv(int fd, char *buf, int buf_size);
            extern int send(int fd, char *buf, int buf_size);
            extern void decrypt(char *ciphertxt, private char *data);
            extern void read_passwd(char *uname, private char *pass, int size);
            extern void read_file(char *fname, char *out, int size);

            int authenticate(char *uname, private char *upass, private char *pass) {
                int i;
                for (i = 0; i < 16; i = i + 1) {
                    if (upass[i] != pass[i]) { return 0; }
                }
                return 1;
            }

            void handleReq(char *uname, private char *upasswd, char *fname,
                           char *out, int out_size) {
                char passwd[512];
                char fcontents[512];
                read_passwd(uname, passwd, 512);
                if (!(authenticate(uname, upasswd, passwd))) {
                    return;
                }
                read_file(fname, fcontents, 512);
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.externs.len(), 5);
        assert_eq!(prog.functions.len(), 2);
        assert_eq!(prog.find_function("handleReq").unwrap().params.len(), 5);
    }

    #[test]
    fn parse_error_reports_location() {
        let err = parse("int f( { }").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }
}
