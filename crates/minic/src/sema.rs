//! Semantic analysis for mini-C: symbol resolution, struct layout, sizing and
//! (loose, C-style) type checking of expressions.
//!
//! Taint checking is *not* performed here — information-flow constraints are
//! generated and solved on the IR (see `confllvm-ir::taint`), matching the
//! paper's design where the flow analysis runs after the frontend.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::FrontendError;
use crate::types::{Type, TypeKind};

#[cfg(test)]
use crate::types::Taint;

/// Size of a machine word / `int` / pointer in bytes.
pub const WORD_SIZE: u64 = 8;

/// Resolved layout of a struct type.
#[derive(Debug, Clone)]
pub struct StructLayout {
    pub name: String,
    pub size: u64,
    pub fields: Vec<FieldLayout>,
}

#[derive(Debug, Clone)]
pub struct FieldLayout {
    pub name: String,
    pub offset: u64,
    pub ty: Type,
}

impl StructLayout {
    pub fn field(&self, name: &str) -> Option<&FieldLayout> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A function or extern signature as seen by callers.
#[derive(Debug, Clone)]
pub struct Signature {
    pub name: String,
    pub params: Vec<Type>,
    pub param_names: Vec<String>,
    pub ret: Type,
    pub is_extern: bool,
}

/// The result of semantic analysis: everything the lowering pass needs to
/// know about the program besides the AST itself.
#[derive(Debug, Clone, Default)]
pub struct Sema {
    pub structs: HashMap<String, StructLayout>,
    pub signatures: HashMap<String, Signature>,
    pub globals: HashMap<String, Type>,
}

impl Sema {
    /// Analyse a program.  Returns the analysis tables or the first error.
    pub fn analyze(prog: &Program) -> Result<Sema, FrontendError> {
        let mut sema = Sema::default();
        // Struct layouts first (structs may reference earlier structs).
        for s in &prog.structs {
            let layout = sema.layout_struct(s)?;
            sema.structs.insert(s.name.clone(), layout);
        }
        // Globals.
        for g in &prog.globals {
            if sema.globals.contains_key(&g.name) {
                return Err(FrontendError::sema(
                    format!("duplicate global `{}`", g.name),
                    g.span,
                ));
            }
            sema.size_of(&g.ty, g.span)?;
            sema.globals.insert(g.name.clone(), g.ty.clone());
        }
        // Signatures for externs (T) and defined functions (U).
        for e in &prog.externs {
            sema.signatures.insert(
                e.name.clone(),
                Signature {
                    name: e.name.clone(),
                    params: e.params.iter().map(|p| p.ty.clone()).collect(),
                    param_names: e.params.iter().map(|p| p.name.clone()).collect(),
                    ret: e.ret.clone(),
                    is_extern: true,
                },
            );
        }
        for f in &prog.functions {
            if sema.signatures.contains_key(&f.name) {
                return Err(FrontendError::sema(
                    format!(
                        "function `{}` conflicts with an earlier declaration",
                        f.name
                    ),
                    f.span,
                ));
            }
            sema.signatures.insert(
                f.name.clone(),
                Signature {
                    name: f.name.clone(),
                    params: f.params.iter().map(|p| p.ty.clone()).collect(),
                    param_names: f.params.iter().map(|p| p.name.clone()).collect(),
                    ret: f.ret.clone(),
                    is_extern: false,
                },
            );
        }
        // Check every function body.
        for f in &prog.functions {
            sema.check_function(f)?;
        }
        Ok(sema)
    }

    fn layout_struct(&self, s: &StructDef) -> Result<StructLayout, FrontendError> {
        let mut fields = Vec::new();
        let mut offset = 0u64;
        for f in &s.fields {
            let size = self.size_of(&f.ty, f.span)?;
            // Word-align every field; mini-C has no packed structs.
            let align = if size >= WORD_SIZE { WORD_SIZE } else { 1 };
            offset = offset.div_ceil(align) * align;
            fields.push(FieldLayout {
                name: f.name.clone(),
                offset,
                ty: f.ty.clone(),
            });
            offset += size;
        }
        let size = offset.div_ceil(WORD_SIZE) * WORD_SIZE;
        Ok(StructLayout {
            name: s.name.clone(),
            size: size.max(WORD_SIZE),
            fields,
        })
    }

    /// Byte size of a type.
    pub fn size_of(&self, ty: &Type, span: Span) -> Result<u64, FrontendError> {
        Ok(match &ty.kind {
            TypeKind::Void => 0,
            TypeKind::Char => 1,
            TypeKind::Int | TypeKind::Ptr(_) | TypeKind::FuncPtr { .. } => WORD_SIZE,
            TypeKind::Array(elem, n) => self.size_of(elem, span)? * n,
            TypeKind::Struct(name) => {
                self.structs
                    .get(name)
                    .ok_or_else(|| FrontendError::sema(format!("unknown struct `{name}`"), span))?
                    .size
            }
        })
    }

    /// Access width in bytes when loading/storing a value of this type.
    pub fn access_size(&self, ty: &Type) -> u64 {
        match &ty.kind {
            TypeKind::Char => 1,
            _ => WORD_SIZE,
        }
    }

    pub fn struct_layout(&self, name: &str) -> Option<&StructLayout> {
        self.structs.get(name)
    }

    pub fn signature(&self, name: &str) -> Option<&Signature> {
        self.signatures.get(name)
    }

    // ----- function-body checking -------------------------------------------

    fn check_function(&self, f: &FunctionDef) -> Result<(), FrontendError> {
        let mut env = LocalEnv::new(self);
        for p in &f.params {
            env.declare(&p.name, p.ty.clone(), p.span)?;
        }
        env.check_block(&f.body)?;
        Ok(())
    }

    /// Compute the static type of an expression under a local environment.
    /// This is also used by the lowering pass, which builds the same
    /// environment as it walks the function.
    pub fn type_of_expr(
        &self,
        expr: &Expr,
        lookup: &dyn Fn(&str) -> Option<Type>,
    ) -> Result<Type, FrontendError> {
        let t = match &expr.kind {
            ExprKind::IntLit(_) => Type::int(),
            ExprKind::CharLit(_) => Type::char(),
            ExprKind::StrLit(_) => Type::ptr(Type::char()),
            ExprKind::Ident(name) => {
                if let Some(t) = lookup(name) {
                    t
                } else if let Some(t) = self.globals.get(name) {
                    t.clone()
                } else if let Some(sig) = self.signatures.get(name) {
                    Type::func_ptr(sig.params.clone(), sig.ret.clone())
                } else {
                    return Err(FrontendError::sema(
                        format!("unknown identifier `{name}`"),
                        expr.span,
                    ));
                }
            }
            ExprKind::Unary { op, operand } => {
                let inner = self.type_of_expr(operand, lookup)?;
                match op {
                    UnOp::Deref => match inner.decay().kind {
                        TypeKind::Ptr(t) => *t,
                        _ => {
                            return Err(FrontendError::sema(
                                format!("cannot dereference value of type `{inner}`"),
                                expr.span,
                            ))
                        }
                    },
                    UnOp::AddrOf => Type::ptr(inner),
                    UnOp::Neg | UnOp::Not | UnOp::BitNot => Type::new(TypeKind::Int, inner.taint),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.type_of_expr(lhs, lookup)?.decay();
                let rt = self.type_of_expr(rhs, lookup)?.decay();
                let taint = lt.taint.join(rt.taint);
                if op.is_comparison() {
                    Type::new(TypeKind::Int, taint)
                } else if lt.is_pointer() {
                    // Pointer arithmetic keeps the pointer type.
                    lt.with_outer_taint(taint)
                } else if rt.is_pointer() {
                    rt.with_outer_taint(taint)
                } else {
                    Type::new(TypeKind::Int, taint)
                }
            }
            ExprKind::Assign { lhs, rhs } => {
                if !lhs.is_lvalue() {
                    return Err(FrontendError::sema(
                        "left side of assignment is not an lvalue",
                        expr.span,
                    ));
                }
                let _ = self.type_of_expr(rhs, lookup)?;
                self.type_of_expr(lhs, lookup)?
            }
            ExprKind::Call { callee, args } => {
                // Direct call to a known function.
                if let ExprKind::Ident(name) = &callee.kind {
                    if let Some(sig) = self.signatures.get(name) {
                        if sig.params.len() != args.len() {
                            return Err(FrontendError::sema(
                                format!(
                                    "`{name}` expects {} arguments but {} were supplied",
                                    sig.params.len(),
                                    args.len()
                                ),
                                expr.span,
                            ));
                        }
                        for a in args {
                            let _ = self.type_of_expr(a, lookup)?;
                        }
                        return Ok(sig.ret.clone());
                    }
                }
                // Indirect call through a function pointer value.
                let callee_ty = self.type_of_expr(callee, lookup)?;
                match callee_ty.kind {
                    TypeKind::FuncPtr { params, ret } => {
                        if params.len() != args.len() {
                            return Err(FrontendError::sema(
                                format!(
                                    "indirect call expects {} arguments but {} were supplied",
                                    params.len(),
                                    args.len()
                                ),
                                expr.span,
                            ));
                        }
                        for a in args {
                            let _ = self.type_of_expr(a, lookup)?;
                        }
                        *ret
                    }
                    _ => {
                        return Err(FrontendError::sema(
                            "called value is neither a function nor a function pointer",
                            expr.span,
                        ))
                    }
                }
            }
            ExprKind::Index { base, index } => {
                let bt = self.type_of_expr(base, lookup)?;
                let _ = self.type_of_expr(index, lookup)?;
                match bt.decay().kind {
                    TypeKind::Ptr(inner) => *inner,
                    _ => {
                        return Err(FrontendError::sema(
                            format!("cannot index value of type `{bt}`"),
                            expr.span,
                        ))
                    }
                }
            }
            ExprKind::Member { base, field } => {
                let bt = self.type_of_expr(base, lookup)?;
                self.member_type(&bt, field, expr.span, false)?
            }
            ExprKind::Arrow { base, field } => {
                let bt = self.type_of_expr(base, lookup)?;
                self.member_type(&bt, field, expr.span, true)?
            }
            ExprKind::Cast { ty, .. } => ty.clone(),
            ExprKind::SizeOf(_) => Type::int(),
        };
        Ok(t)
    }

    /// The type of `base.field` (or `base->field` when `through_ptr`).
    /// Per the paper (Section 5.1), fields inherit their outermost qualifier
    /// from the struct-typed variable they are accessed through.
    pub fn member_type(
        &self,
        base_ty: &Type,
        field: &str,
        span: Span,
        through_ptr: bool,
    ) -> Result<Type, FrontendError> {
        let (struct_name, outer_taint) = if through_ptr {
            match &base_ty.decay().kind {
                TypeKind::Ptr(inner) => match &inner.kind {
                    TypeKind::Struct(n) => (n.clone(), inner.taint),
                    _ => {
                        return Err(FrontendError::sema(
                            format!("`->` applied to non-struct pointer `{base_ty}`"),
                            span,
                        ))
                    }
                },
                _ => {
                    return Err(FrontendError::sema(
                        format!("`->` applied to non-pointer `{base_ty}`"),
                        span,
                    ))
                }
            }
        } else {
            match &base_ty.kind {
                TypeKind::Struct(n) => (n.clone(), base_ty.taint),
                _ => {
                    return Err(FrontendError::sema(
                        format!("`.` applied to non-struct `{base_ty}`"),
                        span,
                    ))
                }
            }
        };
        let layout = self
            .structs
            .get(&struct_name)
            .ok_or_else(|| FrontendError::sema(format!("unknown struct `{struct_name}`"), span))?;
        let f = layout.field(field).ok_or_else(|| {
            FrontendError::sema(
                format!("struct `{struct_name}` has no field `{field}`"),
                span,
            )
        })?;
        // Outermost qualifier inherited from the variable; inner qualifiers
        // (e.g. pointee taints) stay as declared in the struct.
        Ok(f.ty.clone().with_outer_taint(f.ty.taint.join(outer_taint)))
    }
}

/// Local scope used while checking a function body.
struct LocalEnv<'a> {
    sema: &'a Sema,
    scopes: Vec<HashMap<String, Type>>,
}

impl<'a> LocalEnv<'a> {
    fn new(sema: &'a Sema) -> Self {
        LocalEnv {
            sema,
            scopes: vec![HashMap::new()],
        }
    }

    fn declare(&mut self, name: &str, ty: Type, span: Span) -> Result<(), FrontendError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return Err(FrontendError::sema(
                format!("duplicate declaration of `{name}` in the same scope"),
                span,
            ));
        }
        scope.insert(name.to_string(), ty);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(t.clone());
            }
        }
        None
    }

    fn check_block(&mut self, block: &Block) -> Result<(), FrontendError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), FrontendError> {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                init,
                span,
            } => {
                self.sema.size_of(ty, *span)?;
                if let Some(init) = init {
                    self.check_expr(init)?;
                }
                self.declare(name, ty.clone(), *span)?;
            }
            Stmt::Expr(e) => {
                self.check_expr(e)?;
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.check_expr(cond)?;
                self.check_block(then_blk)?;
                if let Some(b) = else_blk {
                    self.check_block(b)?;
                }
            }
            Stmt::While { cond, body, .. } => {
                self.check_expr(cond)?;
                self.check_block(body)?;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.check_expr(cond)?;
                }
                if let Some(step) = step {
                    self.check_expr(step)?;
                }
                self.check_block(body)?;
                self.scopes.pop();
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.check_expr(v)?;
                }
            }
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
            Stmt::Block(b) => self.check_block(b)?,
        }
        Ok(())
    }

    fn check_expr(&self, e: &Expr) -> Result<Type, FrontendError> {
        let lookup = |name: &str| self.lookup(name);
        self.sema.type_of_expr(e, &lookup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze(src: &str) -> Result<Sema, FrontendError> {
        let prog = parse(src).unwrap();
        Sema::analyze(&prog)
    }

    #[test]
    fn struct_layout_offsets() {
        let sema = analyze(
            "struct req { int id; char tag; int size; char buf[12]; };\n\
             int f(struct req *r) { return r->size; }\n",
        )
        .unwrap();
        let l = sema.struct_layout("req").unwrap();
        assert_eq!(l.field("id").unwrap().offset, 0);
        assert_eq!(l.field("tag").unwrap().offset, 8);
        // char tag occupies 1 byte, next word-sized field is aligned up.
        assert_eq!(l.field("size").unwrap().offset, 16);
        assert_eq!(l.field("buf").unwrap().offset, 24);
        assert_eq!(l.size, 40);
    }

    #[test]
    fn undefined_identifier_is_an_error() {
        let err = analyze("int f() { return missing; }").unwrap_err();
        assert!(err.to_string().contains("unknown identifier"));
    }

    #[test]
    fn call_arity_checked() {
        let err = analyze(
            "int g(int a, int b) { return a + b; }\n\
             int f() { return g(1); }\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("expects 2 arguments"));
    }

    #[test]
    fn unknown_field_is_an_error() {
        let err =
            analyze("struct s { int a; };\n int f(struct s *p) { return p->b; }\n").unwrap_err();
        assert!(err.to_string().contains("no field"));
    }

    #[test]
    fn member_taint_inherits_outer_qualifier() {
        let sema = analyze("struct st { int *p; };\n int f(private struct st *x) { return 0; }\n")
            .unwrap();
        // `x` is a pointer to a private struct st; x->p should be a private
        // pointer (outermost taint inherited).
        let base = Type::ptr(Type::strukt("st").with_outer_taint(Taint::Private));
        let t = sema.member_type(&base, "p", Span::default(), true).unwrap();
        assert_eq!(t.taint, Taint::Private);
    }

    #[test]
    fn extern_and_function_signatures_registered() {
        let sema = analyze(
            "extern int send(int fd, char *buf, int n);\n\
             int f() { return 0; }\n",
        )
        .unwrap();
        assert!(sema.signature("send").unwrap().is_extern);
        assert!(!sema.signature("f").unwrap().is_extern);
    }

    #[test]
    fn sizeof_types() {
        let sema = analyze("int f() { return 0; }").unwrap();
        assert_eq!(sema.size_of(&Type::int(), Span::default()).unwrap(), 8);
        assert_eq!(sema.size_of(&Type::char(), Span::default()).unwrap(), 1);
        assert_eq!(
            sema.size_of(&Type::array(Type::char(), 512), Span::default())
                .unwrap(),
            512
        );
        assert_eq!(
            sema.size_of(&Type::ptr(Type::private_int()), Span::default())
                .unwrap(),
            8
        );
    }

    #[test]
    fn duplicate_local_rejected() {
        let err = analyze("int f() { int x; int x; return 0; }").unwrap_err();
        assert!(err.to_string().contains("duplicate declaration"));
    }
}
