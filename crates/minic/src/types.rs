//! The mini-C type system, including the `private` type qualifier of the
//! paper.
//!
//! Every type node carries a [`Taint`].  The qualifier written by the
//! programmer (`private int x`, `private char *buf`) applies to the *data*
//! of the base type, exactly as in the paper: `private int *p` is a public
//! pointer to a private integer (Section 5.1).

/// The two-point confidentiality lattice: `Public ⊑ Private`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Taint {
    /// Low / public data, allowed to flow to public sinks.
    #[default]
    Public,
    /// High / private data, must never flow to public sinks without
    /// declassification through T.
    Private,
}

impl Taint {
    /// Least upper bound in the lattice.
    pub fn join(self, other: Taint) -> Taint {
        if self == Taint::Private || other == Taint::Private {
            Taint::Private
        } else {
            Taint::Public
        }
    }

    /// `self ⊑ other` in the lattice: public may flow anywhere; private may
    /// only flow to private.
    pub fn flows_to(self, other: Taint) -> bool {
        self == Taint::Public || other == Taint::Private
    }

    /// Short display name used in diagnostics and disassembly listings.
    pub fn name(self) -> &'static str {
        match self {
            Taint::Public => "public",
            Taint::Private => "private",
        }
    }

    /// Single taint bit as used in the magic sequences (Section 4).
    pub fn bit(self) -> u64 {
        match self {
            Taint::Public => 0,
            Taint::Private => 1,
        }
    }

    /// Inverse of [`Taint::bit`].
    pub fn from_bit(bit: u64) -> Taint {
        if bit & 1 == 1 {
            Taint::Private
        } else {
            Taint::Public
        }
    }
}

impl std::fmt::Display for Taint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Structural part of a mini-C type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeKind {
    Void,
    /// 64-bit signed integer (the only integer width besides `char`).
    Int,
    /// 8-bit byte.
    Char,
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// Fixed-size array (only allowed for locals and globals).
    Array(Box<Type>, u64),
    /// Named struct; layout is resolved by semantic analysis.
    Struct(String),
    /// Function pointer signature: parameter types and return type.
    FuncPtr {
        params: Vec<Type>,
        ret: Box<Type>,
    },
}

/// A mini-C type: structure plus the taint of the immediate value of this
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Type {
    pub kind: TypeKind,
    pub taint: Taint,
}

impl Type {
    pub fn new(kind: TypeKind, taint: Taint) -> Self {
        Type { kind, taint }
    }

    pub fn void() -> Self {
        Type::new(TypeKind::Void, Taint::Public)
    }

    pub fn int() -> Self {
        Type::new(TypeKind::Int, Taint::Public)
    }

    pub fn private_int() -> Self {
        Type::new(TypeKind::Int, Taint::Private)
    }

    pub fn char() -> Self {
        Type::new(TypeKind::Char, Taint::Public)
    }

    pub fn private_char() -> Self {
        Type::new(TypeKind::Char, Taint::Private)
    }

    /// Pointer to `inner`.  The pointer value itself is public (addresses are
    /// not secrets); what it points to carries `inner`'s taint.
    pub fn ptr(inner: Type) -> Self {
        Type::new(TypeKind::Ptr(Box::new(inner)), Taint::Public)
    }

    pub fn array(elem: Type, len: u64) -> Self {
        let taint = elem.taint;
        Type::new(TypeKind::Array(Box::new(elem), len), taint)
    }

    pub fn strukt(name: &str) -> Self {
        Type::new(TypeKind::Struct(name.to_string()), Taint::Public)
    }

    pub fn func_ptr(params: Vec<Type>, ret: Type) -> Self {
        Type::new(
            TypeKind::FuncPtr {
                params,
                ret: Box::new(ret),
            },
            Taint::Public,
        )
    }

    /// Apply the `private` qualifier the way the surface syntax does: it
    /// attaches to the *base* type of the declaration (the innermost
    /// non-pointer, non-array type).
    pub fn with_base_taint(mut self, taint: Taint) -> Self {
        match &mut self.kind {
            TypeKind::Ptr(inner) => {
                let new_inner = inner.as_ref().clone().with_base_taint(taint);
                **inner = new_inner;
            }
            TypeKind::Array(elem, _) => {
                let new_elem = elem.as_ref().clone().with_base_taint(taint);
                self.taint = new_elem.taint;
                **elem = new_elem;
            }
            _ => self.taint = taint,
        }
        self
    }

    /// Replace the outermost taint (used when a struct field inherits the
    /// qualifier of the struct-typed variable it is accessed through;
    /// Section 5.1).
    pub fn with_outer_taint(mut self, taint: Taint) -> Self {
        self.taint = taint;
        self
    }

    /// The pointed-to type, if this is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match &self.kind {
            TypeKind::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// The element type, if this is an array.
    pub fn element(&self) -> Option<&Type> {
        match &self.kind {
            TypeKind::Array(elem, _) => Some(elem),
            _ => None,
        }
    }

    pub fn is_void(&self) -> bool {
        self.kind == TypeKind::Void
    }

    pub fn is_pointer(&self) -> bool {
        matches!(self.kind, TypeKind::Ptr(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self.kind, TypeKind::Array(..))
    }

    pub fn is_struct(&self) -> bool {
        matches!(self.kind, TypeKind::Struct(_))
    }

    pub fn is_func_ptr(&self) -> bool {
        matches!(self.kind, TypeKind::FuncPtr { .. })
    }

    pub fn is_integer(&self) -> bool {
        matches!(self.kind, TypeKind::Int | TypeKind::Char)
    }

    /// Arrays decay to pointers to their element type when used as values,
    /// as in C.
    pub fn decay(&self) -> Type {
        match &self.kind {
            TypeKind::Array(elem, _) => Type::ptr(elem.as_ref().clone()),
            _ => self.clone(),
        }
    }

    /// The taint of the data obtained by dereferencing this type once
    /// (pointers and arrays); falls back to the type's own taint for scalars.
    pub fn deref_taint(&self) -> Taint {
        match &self.kind {
            TypeKind::Ptr(inner) | TypeKind::Array(inner, _) => inner.taint,
            _ => self.taint,
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.taint == Taint::Private {
            write!(f, "private ")?;
        }
        match &self.kind {
            TypeKind::Void => write!(f, "void"),
            TypeKind::Int => write!(f, "int"),
            TypeKind::Char => write!(f, "char"),
            TypeKind::Ptr(inner) => write!(f, "{}*", inner),
            TypeKind::Array(elem, n) => write!(f, "{}[{}]", elem, n),
            TypeKind::Struct(name) => write!(f, "struct {}", name),
            TypeKind::FuncPtr { params, ret } => {
                write!(f, "{} (*)(", ret)?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", p)?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_laws() {
        use Taint::*;
        assert_eq!(Public.join(Public), Public);
        assert_eq!(Public.join(Private), Private);
        assert_eq!(Private.join(Public), Private);
        assert_eq!(Private.join(Private), Private);
        assert!(Public.flows_to(Public));
        assert!(Public.flows_to(Private));
        assert!(Private.flows_to(Private));
        assert!(!Private.flows_to(Public));
    }

    #[test]
    fn taint_bits_roundtrip() {
        assert_eq!(Taint::from_bit(Taint::Private.bit()), Taint::Private);
        assert_eq!(Taint::from_bit(Taint::Public.bit()), Taint::Public);
    }

    #[test]
    fn base_taint_attaches_to_innermost() {
        // `private int *p` — public pointer to private int.
        let t = Type::ptr(Type::int()).with_base_taint(Taint::Private);
        assert_eq!(t.taint, Taint::Public);
        assert_eq!(t.pointee().unwrap().taint, Taint::Private);

        // `private char buf[16]` — private array of private chars.
        let t = Type::array(Type::char(), 16).with_base_taint(Taint::Private);
        assert_eq!(t.taint, Taint::Private);
        assert_eq!(t.element().unwrap().taint, Taint::Private);

        // Scalar.
        let t = Type::int().with_base_taint(Taint::Private);
        assert_eq!(t.taint, Taint::Private);
    }

    #[test]
    fn array_decay() {
        let arr = Type::array(Type::private_char(), 32);
        let decayed = arr.decay();
        assert!(decayed.is_pointer());
        assert_eq!(decayed.pointee().unwrap().taint, Taint::Private);
        assert_eq!(arr.deref_taint(), Taint::Private);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::private_int().to_string(), "private int");
        assert_eq!(Type::ptr(Type::private_char()).to_string(), "private char*");
        assert_eq!(Type::array(Type::int(), 4).to_string(), "int[4]");
    }
}
