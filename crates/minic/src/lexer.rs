//! Hand-written lexer for mini-C.

use crate::ast::Span;
use crate::error::FrontendError;

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    Int(i64),
    Char(u8),
    Str(String),
    Ident(String),

    // Keywords.
    KwInt,
    KwChar,
    KwVoid,
    KwStruct,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwPrivate,
    KwExtern,
    KwSizeof,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Assign,
    PlusAssign,
    MinusAssign,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,

    Eof,
}

impl Tok {
    /// Human-readable token name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Int(v) => format!("integer literal `{v}`"),
            Tok::Char(c) => format!("character literal `{}`", *c as char),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Eof => "end of input".to_string(),
            other => format!("{other:?}"),
        }
    }
}

/// A token together with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenise an entire mini-C source string.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, FrontendError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> FrontendError {
        FrontendError::lex(msg, self.span())
    }

    fn run(mut self) -> Result<Vec<SpannedTok>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(SpannedTok {
                    tok: Tok::Eof,
                    span,
                });
                return Ok(out);
            };
            let tok = match c {
                '0'..='9' => self.lex_number()?,
                '\'' => self.lex_char()?,
                '"' => self.lex_string()?,
                c if c.is_ascii_alphabetic() || c == '_' => self.lex_ident(),
                _ => self.lex_symbol()?,
            };
            out.push(SpannedTok { tok, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => return Err(self.error("unterminated block comment")),
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                Some('#') => {
                    // Preprocessor-style lines (`#define SIZE 512`) are not
                    // supported; skip them so pasted C snippets still lex, the
                    // parser never sees them.
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Tok, FrontendError> {
        let mut text = String::new();
        let hex = self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X'));
        if hex {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let v = i64::from_str_radix(&text, 16)
                .map_err(|_| self.error(format!("invalid hex literal `0x{text}`")))?;
            return Ok(Tok::Int(v));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let v: i64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid integer literal `{text}`")))?;
        Ok(Tok::Int(v))
    }

    fn lex_char(&mut self) -> Result<Tok, FrontendError> {
        self.bump(); // opening quote
        let c = self
            .bump()
            .ok_or_else(|| self.error("unterminated character literal"))?;
        let value = if c == '\\' {
            let esc = self
                .bump()
                .ok_or_else(|| self.error("unterminated escape"))?;
            escape(esc).ok_or_else(|| self.error(format!("unknown escape `\\{esc}`")))?
        } else {
            c as u8
        };
        if self.bump() != Some('\'') {
            return Err(self.error("expected closing `'`"));
        }
        Ok(Tok::Char(value))
    }

    fn lex_string(&mut self) -> Result<Tok, FrontendError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some('"') => break,
                Some('\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    let b = escape(esc)
                        .ok_or_else(|| self.error(format!("unknown escape `\\{esc}`")))?;
                    s.push(b as char);
                }
                Some(c) => s.push(c),
            }
        }
        Ok(Tok::Str(s))
    }

    fn lex_ident(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match s.as_str() {
            "int" | "long" => Tok::KwInt,
            "char" => Tok::KwChar,
            "void" => Tok::KwVoid,
            "struct" => Tok::KwStruct,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "for" => Tok::KwFor,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "private" => Tok::KwPrivate,
            "extern" => Tok::KwExtern,
            "sizeof" => Tok::KwSizeof,
            _ => Tok::Ident(s),
        }
    }

    fn lex_symbol(&mut self) -> Result<Tok, FrontendError> {
        let c = self.bump().expect("peeked before lex_symbol");
        let next = self.peek();
        let tok = match (c, next) {
            ('-', Some('>')) => {
                self.bump();
                Tok::Arrow
            }
            ('+', Some('=')) => {
                self.bump();
                Tok::PlusAssign
            }
            ('-', Some('=')) => {
                self.bump();
                Tok::MinusAssign
            }
            ('<', Some('<')) => {
                self.bump();
                Tok::Shl
            }
            ('>', Some('>')) => {
                self.bump();
                Tok::Shr
            }
            ('&', Some('&')) => {
                self.bump();
                Tok::AmpAmp
            }
            ('|', Some('|')) => {
                self.bump();
                Tok::PipePipe
            }
            ('=', Some('=')) => {
                self.bump();
                Tok::EqEq
            }
            ('!', Some('=')) => {
                self.bump();
                Tok::NotEq
            }
            ('<', Some('=')) => {
                self.bump();
                Tok::Le
            }
            ('>', Some('=')) => {
                self.bump();
                Tok::Ge
            }
            ('(', _) => Tok::LParen,
            (')', _) => Tok::RParen,
            ('{', _) => Tok::LBrace,
            ('}', _) => Tok::RBrace,
            ('[', _) => Tok::LBracket,
            (']', _) => Tok::RBracket,
            (';', _) => Tok::Semi,
            (',', _) => Tok::Comma,
            ('.', _) => Tok::Dot,
            ('+', _) => Tok::Plus,
            ('-', _) => Tok::Minus,
            ('*', _) => Tok::Star,
            ('/', _) => Tok::Slash,
            ('%', _) => Tok::Percent,
            ('&', _) => Tok::Amp,
            ('|', _) => Tok::Pipe,
            ('^', _) => Tok::Caret,
            ('~', _) => Tok::Tilde,
            ('!', _) => Tok::Bang,
            ('=', _) => Tok::Assign,
            ('<', _) => Tok::Lt,
            ('>', _) => Tok::Gt,
            _ => {
                return Err(FrontendError::lex(
                    format!("unexpected character `{c}`"),
                    self.span(),
                ))
            }
        };
        let _ = self.src;
        Ok(tok)
    }
}

fn escape(c: char) -> Option<u8> {
    Some(match c {
        'n' => b'\n',
        't' => b'\t',
        'r' => b'\r',
        '0' => 0,
        '\\' => b'\\',
        '\'' => b'\'',
        '"' => b'"',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("private int foo"),
            vec![
                Tok::KwPrivate,
                Tok::KwInt,
                Tok::Ident("foo".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42 0x1f"), vec![Tok::Int(42), Tok::Int(31), Tok::Eof]);
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            toks(r#""hi\n" 'a' '\0'"#),
            vec![
                Tok::Str("hi\n".into()),
                Tok::Char(b'a'),
                Tok::Char(0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a->b == c && d <= e >> 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::EqEq,
                Tok::Ident("c".into()),
                Tok::AmpAmp,
                Tok::Ident("d".into()),
                Tok::Le,
                Tok::Ident("e".into()),
                Tok::Shr,
                Tok::Int(2),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_are_skipped() {
        let src = "#define SIZE 512\n// line comment\nint /* inline */ x;";
        assert_eq!(
            toks(src),
            vec![Tok::KwInt, Tok::Ident("x".into()), Tok::Semi, Tok::Eof]
        );
    }

    #[test]
    fn spans_track_lines() {
        let tokens = lex("int\nx;").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[1].span.line, 2);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("`").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'ab").is_err());
    }
}
