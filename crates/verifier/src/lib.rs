//! # confllvm-verify — ConfVerify
//!
//! The independent static verifier of Section 5.2: given only the *binary*
//! produced by the compiler (code words + the trusted extern signature table
//! and magic prefixes from the header), ConfVerify re-disassembles the code,
//! discovers procedure boundaries from the magic words, re-runs a register
//! taint analysis and checks that every store, call, return and indirect call
//! carries the instrumentation required for confidentiality.  The compiler is
//! thereby removed from the TCB: a buggy or malicious ConfLLVM cannot produce
//! a leaking binary that passes ConfVerify.
//!
//! The verifier shares only the instruction *decoder* with the rest of the
//! toolchain (mirroring the paper's use of an off-the-shelf disassembler);
//! the taint reasoning here is implemented independently of the compiler.
//!
//! Because the scan is a single pass *per procedure* over immutable shared
//! state, verification scales out two ways (Section 7's deployment story at
//! fleet size):
//!
//! * [`verify_with`] runs the per-procedure checks over a work queue
//!   ([`VerifyOptions::threads`] workers) and/or consults a content-hash
//!   [`VerifyCache`], so re-registering an unchanged binary is an O(1)
//!   lookup and unchanged procedures inside a changed binary are skipped.
//! * [`verify_fleet`] schedules many binaries over one worker pool and
//!   reports work/makespan accounting alongside host wall time.
//!
//! Both produce byte-identical results to the serial [`verify`] — same
//! errors in the same order, same report counters.

mod cache;
mod check;
mod driver;

use confllvm_machine::{Binary, Scheme};

pub use cache::{binary_content_hash, CacheStats, VerifyCache};
pub use driver::{verify_fleet, verify_with, FleetReport, VerifyOptions};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Code word offset the error refers to.
    pub word: u32,
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "verification failed at word {}: {}",
            self.word, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// Statistics from a successful verification.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    pub procedures: usize,
    pub instructions_checked: usize,
    pub stores_checked: usize,
    pub calls_checked: usize,
    pub returns_checked: usize,
    pub indirect_calls_checked: usize,
    /// Procedures whose outcome came from a [`VerifyCache`] hit rather than
    /// a fresh scan (counts the whole binary's procedures on a binary-level
    /// hit).  Always zero when no cache was supplied.
    pub cached_procedures: usize,
}

impl VerifyReport {
    /// Fold another report's counters into this one (`cached_procedures` is
    /// tracked by the driver, not absorbed).
    pub(crate) fn absorb(&mut self, other: &VerifyReport) {
        self.procedures += other.procedures;
        self.instructions_checked += other.instructions_checked;
        self.stores_checked += other.stores_checked;
        self.calls_checked += other.calls_checked;
        self.returns_checked += other.returns_checked;
        self.indirect_calls_checked += other.indirect_calls_checked;
    }
}

/// Verify a binary with the serial single-threaded scan.  Returns a report
/// on success, or the list of violations.
pub fn verify(binary: &Binary) -> Result<VerifyReport, Vec<VerifyError>> {
    verify_with(binary, &VerifyOptions::serial(), None)
}

/// True if the binary is one ConfVerify can meaningfully check (it must have
/// been produced with a partitioning scheme and CFI).
pub fn is_verifiable(binary: &Binary) -> bool {
    binary.header.cfi && binary.header.scheme != Scheme::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use confllvm_machine::{Binary, BinaryHeader};

    fn empty_binary(cfi: bool, scheme: Scheme) -> Binary {
        Binary {
            words: vec![],
            header: BinaryHeader {
                cfi,
                scheme,
                ..Default::default()
            },
        }
    }

    #[test]
    fn uninstrumented_binaries_are_rejected() {
        assert!(!is_verifiable(&empty_binary(false, Scheme::Mpx)));
        assert!(!is_verifiable(&empty_binary(true, Scheme::None)));
        assert!(verify(&empty_binary(false, Scheme::Mpx)).is_err());
    }

    #[test]
    fn empty_instrumented_binary_has_no_procedures() {
        let err = verify(&empty_binary(true, Scheme::Mpx)).unwrap_err();
        assert!(err[0].message.contains("no procedures"));
    }
}
