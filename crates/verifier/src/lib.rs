//! # confllvm-verify — ConfVerify
//!
//! The independent static verifier of Section 5.2: given only the *binary*
//! produced by the compiler (code words + the trusted extern signature table
//! and magic prefixes from the header), ConfVerify re-disassembles the code,
//! discovers procedure boundaries from the magic words, re-runs a register
//! taint analysis and checks that every store, call, return and indirect call
//! carries the instrumentation required for confidentiality.  The compiler is
//! thereby removed from the TCB: a buggy or malicious ConfLLVM cannot produce
//! a leaking binary that passes ConfVerify.
//!
//! The verifier shares only the instruction *decoder* with the rest of the
//! toolchain (mirroring the paper's use of an off-the-shelf disassembler);
//! the taint reasoning here is implemented independently of the compiler.

use std::collections::HashMap;

use confllvm_machine::{
    decode_words, Binary, BndReg, MInst, MemOperand, MemoryLayout, Reg, RegImm, Scheme, Seg, Taint,
    ARG_REGS, CALLEE_SAVED, RET_REG,
};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Code word offset the error refers to.
    pub word: u32,
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "verification failed at word {}: {}",
            self.word, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// Statistics from a successful verification.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    pub procedures: usize,
    pub instructions_checked: usize,
    pub stores_checked: usize,
    pub calls_checked: usize,
    pub returns_checked: usize,
    pub indirect_calls_checked: usize,
}

/// Verify a binary.  Returns a report on success, or the list of violations.
pub fn verify(binary: &Binary) -> Result<VerifyReport, Vec<VerifyError>> {
    Verifier::new(binary).and_then(|v| v.run())
}

/// True if the binary is one ConfVerify can meaningfully check (it must have
/// been produced with a partitioning scheme and CFI).
pub fn is_verifiable(binary: &Binary) -> bool {
    binary.header.cfi && binary.header.scheme != Scheme::None
}

struct Proc {
    /// Word offset of the procedure's call-magic word.
    magic_word: u32,
    /// Indices (into the decoded instruction list) of the body.
    body: Vec<usize>,
    arg_taints: [Taint; 4],
    ret_taint: Taint,
}

struct Verifier<'a> {
    binary: &'a Binary,
    insts: Vec<(u32, MInst)>,
    word_to_idx: HashMap<u32, usize>,
    layout: MemoryLayout,
    procs: Vec<Proc>,
    errors: Vec<VerifyError>,
    report: VerifyReport,
}

impl<'a> Verifier<'a> {
    fn new(binary: &'a Binary) -> Result<Verifier<'a>, Vec<VerifyError>> {
        if !is_verifiable(binary) {
            return Err(vec![VerifyError {
                word: 0,
                message:
                    "binary was not built with a partitioning scheme and CFI; nothing to verify"
                        .to_string(),
            }]);
        }
        let insts = decode_words(&binary.words, &binary.header.prefixes).map_err(|e| {
            vec![VerifyError {
                word: e.word_index,
                message: format!("disassembly failed: {e}"),
            }]
        })?;
        let word_to_idx = insts
            .iter()
            .enumerate()
            .map(|(i, (w, _))| (*w, i))
            .collect();
        let layout = MemoryLayout::new(
            binary.header.scheme,
            binary.header.split_stacks,
            binary.header.separate_trusted_memory,
        );
        Ok(Verifier {
            binary,
            insts,
            word_to_idx,
            layout,
            procs: Vec::new(),
            errors: Vec::new(),
            report: VerifyReport::default(),
        })
    }

    fn err(&mut self, word: u32, message: impl Into<String>) {
        self.errors.push(VerifyError {
            word,
            message: message.into(),
        });
    }

    fn prefixes(&self) -> confllvm_machine::MagicPrefixes {
        self.binary.header.prefixes
    }

    fn run(mut self) -> Result<VerifyReport, Vec<VerifyError>> {
        self.discover_procedures();
        if self.procs.is_empty() {
            self.err(0, "no procedures found (no call magic words)");
        }
        let procs = std::mem::take(&mut self.procs);
        for p in &procs {
            self.check_procedure(p);
        }
        self.report.procedures = procs.len();
        if self.errors.is_empty() {
            Ok(self.report)
        } else {
            Err(self.errors)
        }
    }

    /// Procedure discovery (Section 5.2): every call-magic word starts a
    /// procedure; its body extends to the next call-magic word.
    fn discover_procedures(&mut self) {
        let prefixes = self.prefixes();
        let starts: Vec<usize> = self
            .insts
            .iter()
            .enumerate()
            .filter_map(|(i, (_, inst))| match inst {
                MInst::MagicWord { value } if prefixes.is_call_word(*value) => Some(i),
                _ => None,
            })
            .collect();
        for (si, &start) in starts.iter().enumerate() {
            let end = starts.get(si + 1).copied().unwrap_or(self.insts.len());
            let (word, inst) = &self.insts[start];
            let MInst::MagicWord { value } = inst else {
                continue;
            };
            let Some((arg_taints, ret_taint)) = prefixes.decode_call(*value) else {
                continue;
            };
            self.procs.push(Proc {
                magic_word: *word,
                body: (start + 1..end).collect(),
                arg_taints,
                ret_taint,
            });
        }
    }

    /// The taint of a memory operand, derived *only* from the checks and
    /// prefixes present in the code (never from compiler metadata).
    ///
    /// * Segmentation scheme: the segment prefix is the classification, and
    ///   the operand must use only the low 32 bits of its registers.
    /// * MPX scheme: a pair of bound checks against the same base register
    ///   must appear earlier in the window with no intervening call or
    ///   redefinition of the base; rsp-relative operands are classified by
    ///   their displacement relative to OFFSET, justified by the `_chkstk`
    ///   enforcement.
    #[allow(clippy::too_many_arguments)]
    fn mem_taint(
        &mut self,
        word: u32,
        mem: &MemOperand,
        checked: &HashMap<Reg, BndReg>,
        slot_of_reg: &HashMap<Reg, i32>,
        checked_slots: &HashMap<i32, BndReg>,
        rsp_off: &HashMap<Reg, i64>,
        global_of_reg: &HashMap<Reg, u32>,
        checked_globals: &HashMap<u32, BndReg>,
        saw_chkstk: bool,
    ) -> Option<Taint> {
        match self.binary.header.scheme {
            Scheme::Segment => {
                if !mem.use_low32 {
                    self.err(
                        word,
                        "segment-scheme memory operand uses full 64-bit registers",
                    );
                    return None;
                }
                match mem.seg {
                    Some(Seg::Fs) => Some(Taint::Public),
                    Some(Seg::Gs) => Some(Taint::Private),
                    None => {
                        self.err(word, "memory operand without segment prefix");
                        None
                    }
                }
            }
            Scheme::Mpx => {
                if mem.is_stack_relative() {
                    if !saw_chkstk {
                        self.err(
                            word,
                            "stack access without chkstk enforcement in the prologue",
                        );
                        return None;
                    }
                    let offset = self.layout.private_stack_offset();
                    if self.binary.header.split_stacks && (mem.disp as i64) >= offset {
                        return Some(Taint::Private);
                    }
                    return Some(Taint::Public);
                }
                let base = match mem.base {
                    Some(b) => b,
                    None => {
                        self.err(word, "memory operand without a base register");
                        return None;
                    }
                };
                // Registers holding `rsp + constant` are materialised stack
                // addresses; with `_chkstk` keeping rsp in bounds they are
                // classified by their offset just like rsp-relative operands
                // (this is what justifies eliminating their checks).
                if let Some(off) = rsp_off.get(&base) {
                    if saw_chkstk && mem.index.is_none() {
                        let total = off + mem.disp as i64;
                        let offset = self.layout.private_stack_offset();
                        let stack = self.layout.thread_stack_size as i64;
                        if self.binary.header.split_stacks
                            && total >= offset
                            && total < offset + stack
                        {
                            return Some(Taint::Private);
                        }
                        if total >= 0 && total < stack {
                            return Some(Taint::Public);
                        }
                    }
                }
                // A register is considered checked because a bndcl/bndcu pair
                // on it appears earlier, because its value was reloaded from
                // a stack slot that was checked earlier with no intervening
                // call (the check-coalescing optimisation of Section 5.1), or
                // because it provably holds the address of a global whose
                // address was checked earlier with no intervening call — a
                // global's address is a link-time constant, so any register
                // derived from `mov_global` of the same global holds the
                // identical (already checked) value.  The latter justifies
                // the compiler's cross-block elimination and loop hoisting of
                // checks on global bases.
                let effective = checked
                    .get(&base)
                    .copied()
                    .or_else(|| {
                        slot_of_reg
                            .get(&base)
                            .and_then(|d| checked_slots.get(d))
                            .copied()
                    })
                    .or_else(|| {
                        global_of_reg
                            .get(&base)
                            .and_then(|g| checked_globals.get(g))
                            .copied()
                    });
                match effective {
                    Some(BndReg::Bnd0) => Some(Taint::Public),
                    Some(BndReg::Bnd1) => Some(Taint::Private),
                    None => {
                        self.err(
                            word,
                            format!("access through {base} has no bound check in this block"),
                        );
                        None
                    }
                }
            }
            Scheme::None => None,
        }
    }

    fn check_procedure(&mut self, p: &Proc) {
        // Register taint state at procedure entry: argument registers from
        // the magic word, everything else conservatively private except the
        // callee-saved registers which the convention forces to be public
        // (Section 4).
        let mut taint: [Taint; Reg::COUNT] = [Taint::Private; Reg::COUNT];
        for r in CALLEE_SAVED {
            taint[r.index()] = Taint::Public;
        }
        taint[Reg::Rsp.index()] = Taint::Public;
        for (i, r) in ARG_REGS.iter().enumerate() {
            taint[r.index()] = p.arg_taints[i];
        }

        let mut checked: HashMap<Reg, BndReg> = HashMap::new();
        // For the check-coalescing optimisation: which stack slot a register's
        // current value was loaded from, and which slots hold already-checked
        // pointers.
        let mut slot_of_reg: HashMap<Reg, i32> = HashMap::new();
        let mut checked_slots: HashMap<i32, BndReg> = HashMap::new();
        // Registers currently holding `rsp + constant` (materialised stack
        // addresses).
        let mut rsp_off: HashMap<Reg, i64> = HashMap::new();
        // Global-address provenance, justifying the cross-block elimination
        // and loop hoisting of checks on global bases: which global's
        // (link-time constant) address a register or slot provably holds, and
        // which globals' addresses have been checked since the last call.
        let mut global_of_reg: HashMap<Reg, u32> = HashMap::new();
        let mut global_of_slot: HashMap<i32, u32> = HashMap::new();
        let mut checked_globals: HashMap<u32, BndReg> = HashMap::new();
        let mut saw_chkstk = false;
        let body = p.body.clone();
        let prefixes = self.prefixes();

        for (k, &idx) in body.iter().enumerate() {
            let (word, inst) = self.insts[idx].clone();
            self.report.instructions_checked += 1;
            match inst {
                MInst::ChkStk => saw_chkstk = true,
                MInst::MovGlobal { dst, index } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.insert(dst, index);
                }
                MInst::MovImm { dst, .. } | MInst::MovFunc { dst, .. } | MInst::Lea { dst, .. } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.remove(&dst);
                }
                MInst::MovReg { dst, src } => {
                    taint[dst.index()] = taint[src.index()];
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    if src == Reg::Rsp {
                        rsp_off.insert(dst, 0);
                    } else if let Some(o) = rsp_off.get(&src).copied() {
                        rsp_off.insert(dst, o);
                    } else {
                        rsp_off.remove(&dst);
                    }
                    if let Some(g) = global_of_reg.get(&src).copied() {
                        global_of_reg.insert(dst, g);
                    } else {
                        global_of_reg.remove(&dst);
                    }
                }
                MInst::Alu { op, dst, src } => {
                    let s = match src {
                        RegImm::Reg(r) => taint[r.index()],
                        RegImm::Imm(_) => Taint::Public,
                    };
                    taint[dst.index()] = taint[dst.index()].join(s);
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    global_of_reg.remove(&dst);
                    match (op, src, rsp_off.get(&dst).copied()) {
                        (confllvm_machine::AluOp::Add, RegImm::Imm(c), Some(o)) => {
                            rsp_off.insert(dst, o + c);
                        }
                        _ => {
                            rsp_off.remove(&dst);
                        }
                    }
                }
                MInst::SetCond { dst, .. } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.remove(&dst);
                }
                MInst::Cmp { .. } | MInst::Jmp { .. } | MInst::Jcc { .. } | MInst::Nop => {}
                MInst::BndCheck { bnd, mem, .. } => {
                    if let Some(base) = mem.base {
                        checked.insert(base, bnd);
                        if let Some(d) = slot_of_reg.get(&base) {
                            checked_slots.insert(*d, bnd);
                        }
                        if let Some(g) = global_of_reg.get(&base) {
                            checked_globals.insert(*g, bnd);
                        }
                    }
                }
                MInst::Load { dst, mem, .. } => {
                    if let Some(t) = self.mem_taint(
                        word,
                        &mem,
                        &checked,
                        &slot_of_reg,
                        &checked_slots,
                        &rsp_off,
                        &global_of_reg,
                        &checked_globals,
                        saw_chkstk,
                    ) {
                        taint[dst.index()] = t;
                    } else {
                        taint[dst.index()] = Taint::Private;
                    }
                    checked.remove(&dst);
                    rsp_off.remove(&dst);
                    if mem.is_stack_relative() {
                        slot_of_reg.insert(dst, mem.disp);
                        if let Some(g) = global_of_slot.get(&mem.disp).copied() {
                            global_of_reg.insert(dst, g);
                        } else {
                            global_of_reg.remove(&dst);
                        }
                    } else {
                        slot_of_reg.remove(&dst);
                        global_of_reg.remove(&dst);
                    }
                }
                MInst::Store { mem, src, .. } => {
                    self.report.stores_checked += 1;
                    if let Some(t) = self.mem_taint(
                        word,
                        &mem,
                        &checked,
                        &slot_of_reg,
                        &checked_slots,
                        &rsp_off,
                        &global_of_reg,
                        &checked_globals,
                        saw_chkstk,
                    ) {
                        if !taint[src.index()].flows_to(t) {
                            self.err(
                                word,
                                format!(
                                    "store of a {} register into {} memory",
                                    taint[src.index()].name(),
                                    t.name()
                                ),
                            );
                        }
                    }
                    if mem.is_stack_relative() {
                        // Overwriting a slot invalidates any coalesced check
                        // associated with the pointer it used to hold, and
                        // records whether the slot now holds a global address.
                        checked_slots.remove(&mem.disp);
                        if let Some(g) = global_of_reg.get(&src).copied() {
                            global_of_slot.insert(mem.disp, g);
                        } else {
                            global_of_slot.remove(&mem.disp);
                        }
                    }
                }
                MInst::Push { .. } => {}
                MInst::Pop { dst } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.remove(&dst);
                }
                MInst::LoadCode { dst, .. } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.remove(&dst);
                }
                MInst::CallDirect { target } => {
                    self.report.calls_checked += 1;
                    self.check_call_target_taints(word, target, &taint);
                    checked_slots.clear();
                    slot_of_reg.clear();
                    // Register contents do not survive the call; the bound
                    // registers are conservatively treated as clobbered, so
                    // checked-global facts die with them (slot contents — and
                    // therefore global_of_slot — persist).
                    global_of_reg.clear();
                    checked_globals.clear();
                    self.after_call(&mut taint, &mut checked, &body, k);
                }
                MInst::CallReg { .. } => {
                    self.report.indirect_calls_checked += 1;
                    self.check_indirect_call_guard(word, &body, k, &taint);
                    checked_slots.clear();
                    slot_of_reg.clear();
                    global_of_reg.clear();
                    checked_globals.clear();
                    self.after_call(&mut taint, &mut checked, &body, k);
                }
                MInst::CallExternal { index } => {
                    self.report.calls_checked += 1;
                    let spec = self.binary.header.externs.get(index as usize).cloned();
                    match spec {
                        Some(spec) => {
                            let expect = spec.arg_reg_taints();
                            for (i, r) in ARG_REGS.iter().enumerate() {
                                if !taint[r.index()].flows_to(expect[i]) {
                                    self.err(
                                        word,
                                        format!(
                                            "argument {i} of call to trusted `{}` is {} but the signature expects {}",
                                            spec.name,
                                            taint[r.index()].name(),
                                            expect[i].name()
                                        ),
                                    );
                                }
                            }
                        }
                        None => self.err(word, format!("call to unknown extern #{index}")),
                    }
                    checked_slots.clear();
                    slot_of_reg.clear();
                    global_of_reg.clear();
                    checked_globals.clear();
                    self.after_call(&mut taint, &mut checked, &body, k);
                }
                MInst::Ret => {
                    self.err(word, "plain ret is forbidden under taint-aware CFI");
                }
                MInst::JmpReg { .. } => {
                    self.report.returns_checked += 1;
                    self.check_return_guard(word, &body, k, &taint, p);
                }
                MInst::Trap { .. } => {}
                MInst::MagicWord { value } => {
                    // Return-site magic words inside a body are fine; a call
                    // magic word would have started a new procedure.
                    if !prefixes.is_ret_word(value) {
                        self.err(word, "unexpected magic word inside a procedure body");
                    }
                }
            }
        }
        let _ = p.magic_word;
    }

    /// After any call: the return register's taint comes from the ret-site
    /// magic word that must follow the call; caller-saved registers are
    /// conservatively private, callee-saved ones public; bound checks do not
    /// survive the call.
    fn after_call(
        &mut self,
        taint: &mut [Taint; Reg::COUNT],
        checked: &mut HashMap<Reg, BndReg>,
        body: &[usize],
        k: usize,
    ) {
        checked.clear();
        for r in confllvm_machine::CALLER_SAVED {
            taint[r.index()] = Taint::Private;
        }
        for r in CALLEE_SAVED {
            taint[r.index()] = Taint::Public;
        }
        taint[Reg::Rsp.index()] = Taint::Public;
        // Ret-site magic word: determines the return register taint.
        let call_idx = body[k];
        let (word, _) = self.insts[call_idx];
        match self.insts.get(call_idx + 1) {
            Some((_, MInst::MagicWord { value })) if self.prefixes().is_ret_word(*value) => {
                if let Some(rt) = self.prefixes().decode_ret(*value) {
                    taint[RET_REG.index()] = rt;
                }
            }
            _ => self.err(word, "call is not followed by a return-site magic word"),
        }
    }

    /// Direct calls: the argument-register taints at the call site must match
    /// the callee's magic word (which precedes its entry).
    fn check_call_target_taints(&mut self, word: u32, target: u32, taint: &[Taint; Reg::COUNT]) {
        let magic_idx = self.word_to_idx.get(&(target.saturating_sub(1))).copied();
        let Some(mi) = magic_idx else {
            self.err(word, "direct call target has no preceding magic word");
            return;
        };
        let (_, inst) = &self.insts[mi];
        let MInst::MagicWord { value } = inst else {
            self.err(word, "direct call target is not preceded by a magic word");
            return;
        };
        let Some((expect, _ret)) = self.prefixes().decode_call(*value) else {
            self.err(
                word,
                "direct call target's magic word is not a call magic word",
            );
            return;
        };
        for (i, r) in ARG_REGS.iter().enumerate() {
            if !taint[r.index()].flows_to(expect[i]) {
                self.err(
                    word,
                    format!(
                        "argument {i} is {} at the call site but the callee expects {}",
                        taint[r.index()].name(),
                        expect[i].name()
                    ),
                );
            }
        }
    }

    /// Indirect calls must be dominated (within the preceding window) by the
    /// LoadCode / compare / branch-to-trap guard, and the expected magic word
    /// immediate must be consistent with the argument taints at the site.
    fn check_indirect_call_guard(
        &mut self,
        word: u32,
        body: &[usize],
        k: usize,
        taint: &[Taint; Reg::COUNT],
    ) {
        let window = 24.min(k);
        let mut saw_loadcode = false;
        let mut saw_guard_branch = false;
        let mut expected_bits: Option<u64> = None;
        for &idx in &body[k - window..k] {
            match &self.insts[idx].1 {
                MInst::LoadCode { .. } => saw_loadcode = true,
                MInst::Jcc { cond, target }
                    if *cond == confllvm_machine::Cond::Ne && self.target_is_trap(*target) =>
                {
                    saw_guard_branch = true;
                }
                MInst::MovImm { imm, .. } => {
                    let candidate = !(*imm as u64);
                    if self.prefixes().is_call_word(candidate) {
                        expected_bits = Some(candidate);
                    }
                }
                _ => {}
            }
        }
        if !saw_loadcode || !saw_guard_branch {
            self.err(word, "indirect call without a magic-word guard");
            return;
        }
        if let Some(expected) = expected_bits {
            if let Some((expect_args, _)) = self.prefixes().decode_call(expected) {
                for (i, r) in ARG_REGS.iter().enumerate() {
                    if !taint[r.index()].flows_to(expect_args[i]) {
                        self.err(
                            word,
                            format!(
                                "indirect call argument {i} is {} but the checked target expects {}",
                                taint[r.index()].name(),
                                expect_args[i].name()
                            ),
                        );
                    }
                }
            }
        } else {
            self.err(
                word,
                "indirect call guard does not compare against a call magic word",
            );
        }
    }

    /// Return sites: the `jmp reg` ending a procedure must be guarded by a
    /// LoadCode / compare / branch-to-trap on the return address, and the
    /// expected word's taint bit must cover the return register's taint.
    fn check_return_guard(
        &mut self,
        word: u32,
        body: &[usize],
        k: usize,
        taint: &[Taint; Reg::COUNT],
        p: &Proc,
    ) {
        let window = 16.min(k);
        let mut saw_loadcode = false;
        let mut saw_guard_branch = false;
        let mut expected_ret_taint: Option<Taint> = None;
        for &idx in &body[k - window..k] {
            match &self.insts[idx].1 {
                MInst::LoadCode { .. } => saw_loadcode = true,
                MInst::Jcc { cond, target }
                    if *cond == confllvm_machine::Cond::Ne && self.target_is_trap(*target) =>
                {
                    saw_guard_branch = true;
                }
                MInst::MovImm { imm, .. } => {
                    let candidate = !(*imm as u64);
                    if self.prefixes().is_ret_word(candidate) {
                        expected_ret_taint = self.prefixes().decode_ret(candidate);
                    }
                }
                _ => {}
            }
        }
        if !saw_loadcode || !saw_guard_branch {
            self.err(
                word,
                "return without a magic-word guard (possible plain indirect jump)",
            );
            return;
        }
        match expected_ret_taint {
            Some(expected) => {
                if !taint[RET_REG.index()].flows_to(expected) && p.ret_taint == Taint::Public {
                    self.err(
                        word,
                        "private value in the return register at a public return site",
                    );
                }
            }
            None => self.err(
                word,
                "return guard does not compare against a ret magic word",
            ),
        }
    }

    fn target_is_trap(&self, target_word: u32) -> bool {
        match self.word_to_idx.get(&target_word) {
            Some(&idx) => matches!(self.insts[idx].1, MInst::Trap { .. }),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confllvm_machine::{Binary, BinaryHeader};

    fn empty_binary(cfi: bool, scheme: Scheme) -> Binary {
        Binary {
            words: vec![],
            header: BinaryHeader {
                cfi,
                scheme,
                ..Default::default()
            },
        }
    }

    #[test]
    fn uninstrumented_binaries_are_rejected() {
        assert!(!is_verifiable(&empty_binary(false, Scheme::Mpx)));
        assert!(!is_verifiable(&empty_binary(true, Scheme::None)));
        assert!(verify(&empty_binary(false, Scheme::Mpx)).is_err());
    }

    #[test]
    fn empty_instrumented_binary_has_no_procedures() {
        let err = verify(&empty_binary(true, Scheme::Mpx)).unwrap_err();
        assert!(err[0].message.contains("no procedures"));
    }
}
