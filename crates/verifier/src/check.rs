//! The per-procedure checking engine.
//!
//! ConfVerify's scan is a *single pass per procedure* over read-only shared
//! state (the decoded instruction stream and the binary header), so checking
//! is embarrassingly parallel across procedures: [`Shared`] carries the
//! immutable context, [`check_procedure`] turns one [`Proc`] into an
//! independent [`ProcOutcome`], and the driver (see [`crate::driver`]) is
//! free to schedule those calls over a work queue.

use std::collections::HashMap;

use confllvm_machine::{
    decode_words, Binary, BndReg, MInst, MemOperand, MemoryLayout, Reg, RegImm, Scheme, Seg, Taint,
    ARG_REGS, CALLEE_SAVED, RET_REG,
};

use crate::{VerifyError, VerifyReport};

/// One discovered procedure (Section 5.2): every call-magic word starts a
/// procedure; its body extends to the next call-magic word.
pub(crate) struct Proc {
    /// Word offset of the procedure's call-magic word.
    pub magic_word: u32,
    /// Indices (into the decoded instruction list) of the body.
    pub body: Vec<usize>,
    /// First word offset past the body (the next procedure's magic word, or
    /// the end of the code).
    pub end_word: u32,
    pub arg_taints: [Taint; 4],
    pub ret_taint: Taint,
}

/// What checking one procedure produced: its violations plus its share of
/// the report counters.  Outcomes are merged in procedure order, so the
/// result is deterministic regardless of how many threads checked them.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProcOutcome {
    pub errors: Vec<VerifyError>,
    pub report: VerifyReport,
}

/// The immutable context every procedure check reads: the binary, its
/// decoded instruction stream, the word→index map and the memory layout.
pub(crate) struct Shared<'a> {
    pub binary: &'a Binary,
    pub insts: Vec<(u32, MInst)>,
    pub word_to_idx: HashMap<u32, usize>,
    pub layout: MemoryLayout,
}

impl<'a> Shared<'a> {
    pub fn new(binary: &'a Binary) -> Result<Shared<'a>, Vec<VerifyError>> {
        if !crate::is_verifiable(binary) {
            return Err(vec![VerifyError {
                word: 0,
                message:
                    "binary was not built with a partitioning scheme and CFI; nothing to verify"
                        .to_string(),
            }]);
        }
        let insts = decode_words(&binary.words, &binary.header.prefixes).map_err(|e| {
            vec![VerifyError {
                word: e.word_index,
                message: format!("disassembly failed: {e}"),
            }]
        })?;
        let word_to_idx = insts
            .iter()
            .enumerate()
            .map(|(i, (w, _))| (*w, i))
            .collect();
        let layout = MemoryLayout::new(
            binary.header.scheme,
            binary.header.split_stacks,
            binary.header.separate_trusted_memory,
        );
        Ok(Shared {
            binary,
            insts,
            word_to_idx,
            layout,
        })
    }

    pub fn prefixes(&self) -> confllvm_machine::MagicPrefixes {
        self.binary.header.prefixes
    }

    /// Procedure discovery (Section 5.2): every call-magic word starts a
    /// procedure; its body extends to the next call-magic word.
    pub fn discover_procedures(&self) -> Vec<Proc> {
        let prefixes = self.prefixes();
        let starts: Vec<usize> = self
            .insts
            .iter()
            .enumerate()
            .filter_map(|(i, (_, inst))| match inst {
                MInst::MagicWord { value } if prefixes.is_call_word(*value) => Some(i),
                _ => None,
            })
            .collect();
        let total_words = self.binary.words.len() as u32;
        let mut procs = Vec::with_capacity(starts.len());
        for (si, &start) in starts.iter().enumerate() {
            let end = starts.get(si + 1).copied().unwrap_or(self.insts.len());
            let end_word = starts
                .get(si + 1)
                .map(|&n| self.insts[n].0)
                .unwrap_or(total_words);
            let (word, inst) = &self.insts[start];
            let MInst::MagicWord { value } = inst else {
                continue;
            };
            let Some((arg_taints, ret_taint)) = prefixes.decode_call(*value) else {
                continue;
            };
            procs.push(Proc {
                magic_word: *word,
                body: (start + 1..end).collect(),
                end_word,
                arg_taints,
                ret_taint,
            });
        }
        procs
    }

    fn target_is_trap(&self, target_word: u32) -> bool {
        match self.word_to_idx.get(&target_word) {
            Some(&idx) => matches!(self.insts[idx].1, MInst::Trap { .. }),
            None => false,
        }
    }
}

/// Check one procedure against the shared context.  Pure with respect to the
/// context: all mutation is confined to the returned outcome.
pub(crate) fn check_procedure(s: &Shared<'_>, p: &Proc) -> ProcOutcome {
    let mut c = ProcChecker {
        s,
        out: ProcOutcome::default(),
    };
    c.check(p);
    c.out.report.procedures = 1;
    c.out
}

struct ProcChecker<'a, 'b> {
    s: &'a Shared<'b>,
    out: ProcOutcome,
}

impl ProcChecker<'_, '_> {
    fn err(&mut self, word: u32, message: impl Into<String>) {
        self.out.errors.push(VerifyError {
            word,
            message: message.into(),
        });
    }

    fn prefixes(&self) -> confllvm_machine::MagicPrefixes {
        self.s.prefixes()
    }

    /// The taint of a memory operand, derived *only* from the checks and
    /// prefixes present in the code (never from compiler metadata).
    ///
    /// * Segmentation scheme: the segment prefix is the classification, and
    ///   the operand must use only the low 32 bits of its registers.
    /// * MPX scheme: a pair of bound checks against the same base register
    ///   must appear earlier in the window with no intervening call or
    ///   redefinition of the base; rsp-relative operands are classified by
    ///   their displacement relative to OFFSET, justified by the `_chkstk`
    ///   enforcement.
    #[allow(clippy::too_many_arguments)]
    fn mem_taint(
        &mut self,
        word: u32,
        mem: &MemOperand,
        checked: &HashMap<Reg, BndReg>,
        slot_of_reg: &HashMap<Reg, i32>,
        checked_slots: &HashMap<i32, BndReg>,
        rsp_off: &HashMap<Reg, i64>,
        global_of_reg: &HashMap<Reg, u32>,
        checked_globals: &HashMap<u32, BndReg>,
        saw_chkstk: bool,
    ) -> Option<Taint> {
        match self.s.binary.header.scheme {
            Scheme::Segment => {
                if !mem.use_low32 {
                    self.err(
                        word,
                        "segment-scheme memory operand uses full 64-bit registers",
                    );
                    return None;
                }
                match mem.seg {
                    Some(Seg::Fs) => Some(Taint::Public),
                    Some(Seg::Gs) => Some(Taint::Private),
                    None => {
                        self.err(word, "memory operand without segment prefix");
                        None
                    }
                }
            }
            Scheme::Mpx => {
                if mem.is_stack_relative() {
                    if !saw_chkstk {
                        self.err(
                            word,
                            "stack access without chkstk enforcement in the prologue",
                        );
                        return None;
                    }
                    let offset = self.s.layout.private_stack_offset();
                    if self.s.binary.header.split_stacks && (mem.disp as i64) >= offset {
                        return Some(Taint::Private);
                    }
                    return Some(Taint::Public);
                }
                let base = match mem.base {
                    Some(b) => b,
                    None => {
                        self.err(word, "memory operand without a base register");
                        return None;
                    }
                };
                // Registers holding `rsp + constant` are materialised stack
                // addresses; with `_chkstk` keeping rsp in bounds they are
                // classified by their offset just like rsp-relative operands
                // (this is what justifies eliminating their checks).
                if let Some(off) = rsp_off.get(&base) {
                    if saw_chkstk && mem.index.is_none() {
                        let total = off + mem.disp as i64;
                        let offset = self.s.layout.private_stack_offset();
                        let stack = self.s.layout.thread_stack_size as i64;
                        if self.s.binary.header.split_stacks
                            && total >= offset
                            && total < offset + stack
                        {
                            return Some(Taint::Private);
                        }
                        if total >= 0 && total < stack {
                            return Some(Taint::Public);
                        }
                    }
                }
                // A register is considered checked because a bndcl/bndcu pair
                // on it appears earlier, because its value was reloaded from
                // a stack slot that was checked earlier with no intervening
                // call (the check-coalescing optimisation of Section 5.1), or
                // because it provably holds the address of a global whose
                // address was checked earlier with no intervening call — a
                // global's address is a link-time constant, so any register
                // derived from `mov_global` of the same global holds the
                // identical (already checked) value.  The latter justifies
                // the compiler's cross-block elimination and loop hoisting of
                // checks on global bases.
                let effective = checked
                    .get(&base)
                    .copied()
                    .or_else(|| {
                        slot_of_reg
                            .get(&base)
                            .and_then(|d| checked_slots.get(d))
                            .copied()
                    })
                    .or_else(|| {
                        global_of_reg
                            .get(&base)
                            .and_then(|g| checked_globals.get(g))
                            .copied()
                    });
                match effective {
                    Some(BndReg::Bnd0) => Some(Taint::Public),
                    Some(BndReg::Bnd1) => Some(Taint::Private),
                    None => {
                        self.err(
                            word,
                            format!("access through {base} has no bound check in this block"),
                        );
                        None
                    }
                }
            }
            Scheme::None => None,
        }
    }

    fn check(&mut self, p: &Proc) {
        // Register taint state at procedure entry: argument registers from
        // the magic word, everything else conservatively private except the
        // callee-saved registers which the convention forces to be public
        // (Section 4).
        let mut taint: [Taint; Reg::COUNT] = [Taint::Private; Reg::COUNT];
        for r in CALLEE_SAVED {
            taint[r.index()] = Taint::Public;
        }
        taint[Reg::Rsp.index()] = Taint::Public;
        for (i, r) in ARG_REGS.iter().enumerate() {
            taint[r.index()] = p.arg_taints[i];
        }

        let mut checked: HashMap<Reg, BndReg> = HashMap::new();
        // For the check-coalescing optimisation: which stack slot a register's
        // current value was loaded from, and which slots hold already-checked
        // pointers.
        let mut slot_of_reg: HashMap<Reg, i32> = HashMap::new();
        let mut checked_slots: HashMap<i32, BndReg> = HashMap::new();
        // Registers currently holding `rsp + constant` (materialised stack
        // addresses).
        let mut rsp_off: HashMap<Reg, i64> = HashMap::new();
        // Global-address provenance, justifying the cross-block elimination
        // and loop hoisting of checks on global bases: which global's
        // (link-time constant) address a register or slot provably holds, and
        // which globals' addresses have been checked since the last call.
        let mut global_of_reg: HashMap<Reg, u32> = HashMap::new();
        let mut global_of_slot: HashMap<i32, u32> = HashMap::new();
        let mut checked_globals: HashMap<u32, BndReg> = HashMap::new();
        let mut saw_chkstk = false;
        let body = &p.body;
        let prefixes = self.prefixes();

        for (k, &idx) in body.iter().enumerate() {
            let (word, inst) = self.s.insts[idx].clone();
            self.out.report.instructions_checked += 1;
            match inst {
                MInst::ChkStk => saw_chkstk = true,
                MInst::MovGlobal { dst, index } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.insert(dst, index);
                }
                MInst::MovImm { dst, .. } | MInst::MovFunc { dst, .. } | MInst::Lea { dst, .. } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.remove(&dst);
                }
                MInst::MovReg { dst, src } => {
                    taint[dst.index()] = taint[src.index()];
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    if src == Reg::Rsp {
                        rsp_off.insert(dst, 0);
                    } else if let Some(o) = rsp_off.get(&src).copied() {
                        rsp_off.insert(dst, o);
                    } else {
                        rsp_off.remove(&dst);
                    }
                    if let Some(g) = global_of_reg.get(&src).copied() {
                        global_of_reg.insert(dst, g);
                    } else {
                        global_of_reg.remove(&dst);
                    }
                }
                MInst::Alu { op, dst, src } => {
                    let s = match src {
                        RegImm::Reg(r) => taint[r.index()],
                        RegImm::Imm(_) => Taint::Public,
                    };
                    taint[dst.index()] = taint[dst.index()].join(s);
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    global_of_reg.remove(&dst);
                    match (op, src, rsp_off.get(&dst).copied()) {
                        (confllvm_machine::AluOp::Add, RegImm::Imm(c), Some(o)) => {
                            rsp_off.insert(dst, o + c);
                        }
                        _ => {
                            rsp_off.remove(&dst);
                        }
                    }
                }
                MInst::SetCond { dst, .. } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.remove(&dst);
                }
                MInst::Cmp { .. } | MInst::Jmp { .. } | MInst::Jcc { .. } | MInst::Nop => {}
                MInst::BndCheck { bnd, mem, .. } => {
                    if let Some(base) = mem.base {
                        checked.insert(base, bnd);
                        if let Some(d) = slot_of_reg.get(&base) {
                            checked_slots.insert(*d, bnd);
                        }
                        if let Some(g) = global_of_reg.get(&base) {
                            checked_globals.insert(*g, bnd);
                        }
                    }
                }
                MInst::Load { dst, mem, .. } => {
                    if let Some(t) = self.mem_taint(
                        word,
                        &mem,
                        &checked,
                        &slot_of_reg,
                        &checked_slots,
                        &rsp_off,
                        &global_of_reg,
                        &checked_globals,
                        saw_chkstk,
                    ) {
                        taint[dst.index()] = t;
                    } else {
                        taint[dst.index()] = Taint::Private;
                    }
                    checked.remove(&dst);
                    rsp_off.remove(&dst);
                    if mem.is_stack_relative() {
                        slot_of_reg.insert(dst, mem.disp);
                        if let Some(g) = global_of_slot.get(&mem.disp).copied() {
                            global_of_reg.insert(dst, g);
                        } else {
                            global_of_reg.remove(&dst);
                        }
                    } else {
                        slot_of_reg.remove(&dst);
                        global_of_reg.remove(&dst);
                    }
                }
                MInst::Store { mem, src, .. } => {
                    self.out.report.stores_checked += 1;
                    if let Some(t) = self.mem_taint(
                        word,
                        &mem,
                        &checked,
                        &slot_of_reg,
                        &checked_slots,
                        &rsp_off,
                        &global_of_reg,
                        &checked_globals,
                        saw_chkstk,
                    ) {
                        if !taint[src.index()].flows_to(t) {
                            self.err(
                                word,
                                format!(
                                    "store of a {} register into {} memory",
                                    taint[src.index()].name(),
                                    t.name()
                                ),
                            );
                        }
                    }
                    if mem.is_stack_relative() {
                        // Overwriting a slot invalidates any coalesced check
                        // associated with the pointer it used to hold, and
                        // records whether the slot now holds a global address.
                        checked_slots.remove(&mem.disp);
                        if let Some(g) = global_of_reg.get(&src).copied() {
                            global_of_slot.insert(mem.disp, g);
                        } else {
                            global_of_slot.remove(&mem.disp);
                        }
                    }
                }
                MInst::Push { .. } => {}
                MInst::Pop { dst } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.remove(&dst);
                }
                MInst::LoadCode { dst, .. } => {
                    taint[dst.index()] = Taint::Public;
                    checked.remove(&dst);
                    slot_of_reg.remove(&dst);
                    rsp_off.remove(&dst);
                    global_of_reg.remove(&dst);
                }
                MInst::CallDirect { target } => {
                    self.out.report.calls_checked += 1;
                    self.check_call_target_taints(word, target, &taint);
                    checked_slots.clear();
                    slot_of_reg.clear();
                    // Register contents do not survive the call; the bound
                    // registers are conservatively treated as clobbered, so
                    // checked-global facts die with them (slot contents — and
                    // therefore global_of_slot — persist).
                    global_of_reg.clear();
                    checked_globals.clear();
                    self.after_call(&mut taint, &mut checked, body, k);
                }
                MInst::CallReg { .. } => {
                    self.out.report.indirect_calls_checked += 1;
                    self.check_indirect_call_guard(word, body, k, &taint);
                    checked_slots.clear();
                    slot_of_reg.clear();
                    global_of_reg.clear();
                    checked_globals.clear();
                    self.after_call(&mut taint, &mut checked, body, k);
                }
                MInst::CallExternal { index } => {
                    self.out.report.calls_checked += 1;
                    let spec = self.s.binary.header.externs.get(index as usize).cloned();
                    match spec {
                        Some(spec) => {
                            let expect = spec.arg_reg_taints();
                            for (i, r) in ARG_REGS.iter().enumerate() {
                                if !taint[r.index()].flows_to(expect[i]) {
                                    self.err(
                                        word,
                                        format!(
                                            "argument {i} of call to trusted `{}` is {} but the signature expects {}",
                                            spec.name,
                                            taint[r.index()].name(),
                                            expect[i].name()
                                        ),
                                    );
                                }
                            }
                        }
                        None => self.err(word, format!("call to unknown extern #{index}")),
                    }
                    checked_slots.clear();
                    slot_of_reg.clear();
                    global_of_reg.clear();
                    checked_globals.clear();
                    self.after_call(&mut taint, &mut checked, body, k);
                }
                MInst::Ret => {
                    self.err(word, "plain ret is forbidden under taint-aware CFI");
                }
                MInst::JmpReg { .. } => {
                    self.out.report.returns_checked += 1;
                    self.check_return_guard(word, body, k, &taint, p);
                }
                MInst::Trap { .. } => {}
                MInst::MagicWord { value } => {
                    // Return-site magic words inside a body are fine; a call
                    // magic word would have started a new procedure.
                    if !prefixes.is_ret_word(value) {
                        self.err(word, "unexpected magic word inside a procedure body");
                    }
                }
            }
        }
        let _ = p.magic_word;
    }

    /// After any call: the return register's taint comes from the ret-site
    /// magic word that must follow the call; caller-saved registers are
    /// conservatively private, callee-saved ones public; bound checks do not
    /// survive the call.
    fn after_call(
        &mut self,
        taint: &mut [Taint; Reg::COUNT],
        checked: &mut HashMap<Reg, BndReg>,
        body: &[usize],
        k: usize,
    ) {
        checked.clear();
        for r in confllvm_machine::CALLER_SAVED {
            taint[r.index()] = Taint::Private;
        }
        for r in CALLEE_SAVED {
            taint[r.index()] = Taint::Public;
        }
        taint[Reg::Rsp.index()] = Taint::Public;
        // Ret-site magic word: determines the return register taint.
        let call_idx = body[k];
        let (word, _) = self.s.insts[call_idx];
        match self.s.insts.get(call_idx + 1) {
            Some((_, MInst::MagicWord { value })) if self.prefixes().is_ret_word(*value) => {
                if let Some(rt) = self.prefixes().decode_ret(*value) {
                    taint[RET_REG.index()] = rt;
                }
            }
            _ => self.err(word, "call is not followed by a return-site magic word"),
        }
    }

    /// Direct calls: the argument-register taints at the call site must match
    /// the callee's magic word (which precedes its entry).
    fn check_call_target_taints(&mut self, word: u32, target: u32, taint: &[Taint; Reg::COUNT]) {
        let magic_idx = self.s.word_to_idx.get(&(target.saturating_sub(1))).copied();
        let Some(mi) = magic_idx else {
            self.err(word, "direct call target has no preceding magic word");
            return;
        };
        let (_, inst) = &self.s.insts[mi];
        let MInst::MagicWord { value } = inst else {
            self.err(word, "direct call target is not preceded by a magic word");
            return;
        };
        let Some((expect, _ret)) = self.prefixes().decode_call(*value) else {
            self.err(
                word,
                "direct call target's magic word is not a call magic word",
            );
            return;
        };
        for (i, r) in ARG_REGS.iter().enumerate() {
            if !taint[r.index()].flows_to(expect[i]) {
                self.err(
                    word,
                    format!(
                        "argument {i} is {} at the call site but the callee expects {}",
                        taint[r.index()].name(),
                        expect[i].name()
                    ),
                );
            }
        }
    }

    /// Indirect calls must be dominated (within the preceding window) by the
    /// LoadCode / compare / branch-to-trap guard, and the expected magic word
    /// immediate must be consistent with the argument taints at the site.
    fn check_indirect_call_guard(
        &mut self,
        word: u32,
        body: &[usize],
        k: usize,
        taint: &[Taint; Reg::COUNT],
    ) {
        let window = 24.min(k);
        let mut saw_loadcode = false;
        let mut saw_guard_branch = false;
        let mut expected_bits: Option<u64> = None;
        for &idx in &body[k - window..k] {
            match &self.s.insts[idx].1 {
                MInst::LoadCode { .. } => saw_loadcode = true,
                MInst::Jcc { cond, target }
                    if *cond == confllvm_machine::Cond::Ne && self.s.target_is_trap(*target) =>
                {
                    saw_guard_branch = true;
                }
                MInst::MovImm { imm, .. } => {
                    let candidate = !(*imm as u64);
                    if self.prefixes().is_call_word(candidate) {
                        expected_bits = Some(candidate);
                    }
                }
                _ => {}
            }
        }
        if !saw_loadcode || !saw_guard_branch {
            self.err(word, "indirect call without a magic-word guard");
            return;
        }
        if let Some(expected) = expected_bits {
            if let Some((expect_args, _)) = self.prefixes().decode_call(expected) {
                for (i, r) in ARG_REGS.iter().enumerate() {
                    if !taint[r.index()].flows_to(expect_args[i]) {
                        self.err(
                            word,
                            format!(
                                "indirect call argument {i} is {} but the checked target expects {}",
                                taint[r.index()].name(),
                                expect_args[i].name()
                            ),
                        );
                    }
                }
            }
        } else {
            self.err(
                word,
                "indirect call guard does not compare against a call magic word",
            );
        }
    }

    /// Return sites: the `jmp reg` ending a procedure must be guarded by a
    /// LoadCode / compare / branch-to-trap on the return address, and the
    /// expected word's taint bit must cover the return register's taint.
    fn check_return_guard(
        &mut self,
        word: u32,
        body: &[usize],
        k: usize,
        taint: &[Taint; Reg::COUNT],
        p: &Proc,
    ) {
        let window = 16.min(k);
        let mut saw_loadcode = false;
        let mut saw_guard_branch = false;
        let mut expected_ret_taint: Option<Taint> = None;
        for &idx in &body[k - window..k] {
            match &self.s.insts[idx].1 {
                MInst::LoadCode { .. } => saw_loadcode = true,
                MInst::Jcc { cond, target }
                    if *cond == confllvm_machine::Cond::Ne && self.s.target_is_trap(*target) =>
                {
                    saw_guard_branch = true;
                }
                MInst::MovImm { imm, .. } => {
                    let candidate = !(*imm as u64);
                    if self.prefixes().is_ret_word(candidate) {
                        expected_ret_taint = self.prefixes().decode_ret(candidate);
                    }
                }
                _ => {}
            }
        }
        if !saw_loadcode || !saw_guard_branch {
            self.err(
                word,
                "return without a magic-word guard (possible plain indirect jump)",
            );
            return;
        }
        match expected_ret_taint {
            Some(expected) => {
                if !taint[RET_REG.index()].flows_to(expected) && p.ret_taint == Taint::Public {
                    self.err(
                        word,
                        "private value in the return register at a public return site",
                    );
                }
            }
            None => self.err(
                word,
                "return guard does not compare against a ret magic word",
            ),
        }
    }
}
