//! Content-hash verification cache.
//!
//! Verification is a pure function of a binary's *content*: the code words
//! plus the header facts the checker reads (scheme, CFI, stack layout, magic
//! prefixes, the trusted extern signature table).  The cache exploits that in
//! two tiers:
//!
//! * **Binary-level** — the hash of the whole binary maps to its complete
//!   verification result, so re-registering an unchanged binary (the common
//!   fleet roll: the same build pushed under a new version) is an O(1)
//!   lookup instead of a re-scan.
//! * **Procedure-level** — each procedure's word span (plus the
//!   cross-procedure facts its check reads: the magic word at every direct
//!   call target and the trap-ness of out-of-body branch targets) maps to
//!   that procedure's outcome, so unchanged functions inside a changed
//!   binary are also skipped.
//!
//! Cached procedure errors are stored with word offsets *relative* to the
//! procedure's magic word and rebased on every hit, so a hit from a
//! procedure that moved still reports correct absolute offsets.
//!
//! The cache is safe to share across threads and across concurrent
//! registrations; all lookups and stores go through one mutex (the guarded
//! work is a hash-map probe, orders of magnitude cheaper than the
//! verification it saves).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use confllvm_machine::{Binary, BinaryHeader, MInst, Taint};

use crate::check::{Proc, ProcOutcome, Shared};
use crate::{VerifyError, VerifyReport};

/// FNV-1a 64-bit, the usual dependency-free content hash.
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub fn u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
    }

    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    /// Fold one 64-bit code word in a single xor+multiply step (FNV-1a over
    /// u64 units; the multiply by an odd prime is bijective, so a one-word
    /// difference always survives to the final state).  Byte-at-a-time
    /// hashing made the binary-level cache *hit* path hash-bound — the whole
    /// point of that tier is to be an order of magnitude cheaper than the
    /// re-scan it skips.
    pub fn word(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(Self::PRIME);
    }

    pub fn bytes(&mut self, bs: &[u8]) {
        // Length-prefix so concatenated fields cannot alias each other.
        self.u64(bs.len() as u64);
        for &b in bs {
            self.u8(b);
        }
    }

    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    pub fn taint(&mut self, t: Taint) {
        self.u8(match t {
            Taint::Public => 0,
            Taint::Private => 1,
        });
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash of every header fact the checker reads.  The binary's *name* is
/// deliberately excluded: the same content registered under a different name
/// (or a new version) must hit.
pub(crate) fn header_ctx_hash(header: &BinaryHeader) -> u64 {
    let mut h = Fnv::new();
    h.u8(header.scheme as u8);
    h.u8(header.cfi as u8);
    h.u8(header.split_stacks as u8);
    h.u8(header.separate_trusted_memory as u8);
    h.u64(header.prefixes.call_prefix);
    h.u64(header.prefixes.ret_prefix);
    h.u64(header.externs.len() as u64);
    for e in &header.externs {
        h.str(&e.name);
        h.u64(e.param_taints.len() as u64);
        for &t in &e.param_taints {
            h.taint(t);
        }
        for &t in &e.param_pointee_taints {
            h.taint(t);
        }
        for &p in &e.param_is_pointer {
            h.u8(p as u8);
        }
        h.taint(e.ret_taint);
        h.u8(e.has_ret_value as u8);
    }
    h.u64(header.globals.len() as u64);
    for g in &header.globals {
        h.str(&g.name);
        h.u64(g.size);
        h.taint(g.taint);
        h.bytes(&g.init);
    }
    h.finish()
}

/// Content hash of a whole binary: the header context plus every code word.
pub fn binary_content_hash(binary: &Binary) -> u64 {
    let mut h = Fnv::new();
    h.u64(header_ctx_hash(&binary.header));
    h.u64(binary.words.len() as u64);
    for &w in &binary.words {
        h.word(w);
    }
    h.finish()
}

/// Content hash of one procedure: its word span, plus every cross-procedure
/// fact its check consults — the magic word preceding each direct call
/// target (the callee signature the call-site taints are checked against)
/// and whether each out-of-body branch target is a trap (the CFI guard
/// check).  Everything else the check reads lives inside the span itself.
pub(crate) fn proc_content_hash(s: &Shared<'_>, p: &Proc, header_ctx: u64) -> u64 {
    let mut h = Fnv::new();
    h.u64(header_ctx);
    let start = p.magic_word as usize;
    let end = (p.end_word as usize).min(s.binary.words.len());
    h.u64((end - start) as u64);
    for &w in &s.binary.words[start..end] {
        h.word(w);
    }
    for &idx in &p.body {
        match &s.insts[idx].1 {
            MInst::CallDirect { target } => {
                let callee_magic = s
                    .word_to_idx
                    .get(&target.saturating_sub(1))
                    .and_then(|&mi| match s.insts[mi].1 {
                        MInst::MagicWord { value } => Some(value),
                        _ => None,
                    });
                h.u8(1);
                h.u64(callee_magic.unwrap_or(0));
                h.u8(callee_magic.is_some() as u8);
            }
            MInst::Jcc { target, .. } if *target < p.magic_word || *target >= p.end_word => {
                h.u8(2);
                h.u64(*target as u64);
                h.u8(s
                    .word_to_idx
                    .get(target)
                    .map(|&ti| matches!(s.insts[ti].1, MInst::Trap { .. }))
                    .unwrap_or(false) as u8);
            }
            _ => {}
        }
    }
    h.finish()
}

/// A cached procedure outcome: errors stored relative to the procedure's
/// magic word, plus the procedure's share of the report counters.
#[derive(Clone)]
struct ProcEntry {
    rel_errors: Vec<VerifyError>,
    report: VerifyReport,
}

enum CacheEntry {
    Binary(Result<VerifyReport, Vec<VerifyError>>),
    Proc(ProcEntry),
}

/// Cache statistics: lookups that hit, lookups that missed, entries stored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// The shared verification cache.  See the module docs for the two tiers.
#[derive(Default)]
pub struct VerifyCache {
    map: Mutex<HashMap<u64, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for VerifyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("VerifyCache")
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl VerifyCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("verify cache poisoned").len(),
        }
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn lookup_binary(&self, key: u64) -> Option<Result<VerifyReport, Vec<VerifyError>>> {
        let map = self.map.lock().expect("verify cache poisoned");
        let out = match map.get(&key) {
            Some(CacheEntry::Binary(r)) => Some(r.clone()),
            _ => None,
        };
        drop(map);
        self.record(out.is_some());
        out
    }

    pub(crate) fn store_binary(&self, key: u64, result: &Result<VerifyReport, Vec<VerifyError>>) {
        self.map
            .lock()
            .expect("verify cache poisoned")
            .insert(key, CacheEntry::Binary(result.clone()));
    }

    /// Look up one procedure's outcome, rebasing cached error offsets onto
    /// `magic_word`.  Counts a hit/miss.
    pub(crate) fn lookup_proc(&self, key: u64, magic_word: u32) -> Option<ProcOutcome> {
        let map = self.map.lock().expect("verify cache poisoned");
        let out = match map.get(&key) {
            Some(CacheEntry::Proc(e)) => Some(ProcOutcome {
                errors: e
                    .rel_errors
                    .iter()
                    .map(|err| VerifyError {
                        word: err.word.wrapping_add(magic_word),
                        message: err.message.clone(),
                    })
                    .collect(),
                report: e.report.clone(),
            }),
            _ => None,
        };
        drop(map);
        self.record(out.is_some());
        out
    }

    pub(crate) fn store_proc(&self, key: u64, magic_word: u32, outcome: &ProcOutcome) {
        let entry = ProcEntry {
            rel_errors: outcome
                .errors
                .iter()
                .map(|err| VerifyError {
                    word: err.word.wrapping_sub(magic_word),
                    message: err.message.clone(),
                })
                .collect(),
            report: outcome.report.clone(),
        };
        self.map
            .lock()
            .expect("verify cache poisoned")
            .insert(key, CacheEntry::Proc(entry));
    }

    /// Serialise every entry to `path` (atomically: temp file + rename), so
    /// a warm cache survives a service restart.  The format is versioned and
    /// ends in a checksum of everything before it; [`VerifyCache::load`]
    /// ignores files that fail either test.  Runtime hit/miss statistics are
    /// not persisted — a loaded cache starts cold on stats, warm on content.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let bytes = self.serialize();
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Load a cache previously written by [`VerifyCache::save`].  Any
    /// problem — missing file, unknown magic, stale format version,
    /// truncation, checksum mismatch, malformed entry — yields an empty
    /// (cold) cache: persistence is an optimisation, never a correctness
    /// dependency, so a bad file must not take the service down.
    pub fn load(path: &std::path::Path) -> Self {
        let cache = Self::new();
        if let Ok(bytes) = std::fs::read(path) {
            if let Some(map) = Self::deserialize(&bytes) {
                *cache.map.lock().expect("verify cache poisoned") = map;
            }
        }
        cache
    }

    const MAGIC: &'static [u8; 8] = b"CFLVCACH";
    const FORMAT_VERSION: u32 = 1;

    fn serialize(&self) -> Vec<u8> {
        let map = self.map.lock().expect("verify cache poisoned");
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        out.extend_from_slice(&Self::FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(map.len() as u64).to_le_bytes());
        // BTreeMap ordering makes the file content deterministic for a
        // given cache state (HashMap iteration order is not).
        let ordered: std::collections::BTreeMap<_, _> = map.iter().collect();
        for (key, entry) in ordered {
            out.extend_from_slice(&key.to_le_bytes());
            let (tag, report, errors): (u8, Option<&VerifyReport>, &[VerifyError]) = match entry {
                CacheEntry::Binary(Ok(r)) => (0, Some(r), &[]),
                CacheEntry::Binary(Err(errs)) => (1, None, errs),
                CacheEntry::Proc(p) => (2, Some(&p.report), &p.rel_errors),
            };
            out.push(tag);
            if let Some(r) = report {
                for v in [
                    r.procedures,
                    r.instructions_checked,
                    r.stores_checked,
                    r.calls_checked,
                    r.returns_checked,
                    r.indirect_calls_checked,
                    r.cached_procedures,
                ] {
                    out.extend_from_slice(&(v as u64).to_le_bytes());
                }
            }
            out.extend_from_slice(&(errors.len() as u64).to_le_bytes());
            for e in errors {
                out.extend_from_slice(&e.word.to_le_bytes());
                out.extend_from_slice(&(e.message.len() as u64).to_le_bytes());
                out.extend_from_slice(e.message.as_bytes());
            }
        }
        let mut h = Fnv::new();
        for &b in &out {
            h.u8(b);
        }
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    fn deserialize(bytes: &[u8]) -> Option<HashMap<u64, CacheEntry>> {
        // Checksum first: the trailer must hash-match everything before it,
        // so a flipped bit anywhere in the file is rejected before any
        // length field is trusted.
        let payload_len = bytes.len().checked_sub(8)?;
        let (payload, trailer) = bytes.split_at(payload_len);
        let mut h = Fnv::new();
        for &b in payload {
            h.u8(b);
        }
        if h.finish().to_le_bytes() != trailer {
            return None;
        }
        let mut r = Reader(payload);
        if r.take(8)? != Self::MAGIC {
            return None;
        }
        if u32::from_le_bytes(r.take(4)?.try_into().ok()?) != Self::FORMAT_VERSION {
            return None;
        }
        let count = r.u64()?;
        let mut map = HashMap::new();
        for _ in 0..count {
            let key = r.u64()?;
            let tag = r.take(1)?[0];
            let report = if tag == 0 || tag == 2 {
                let mut vals = [0u64; 7];
                for v in &mut vals {
                    *v = r.u64()?;
                }
                Some(VerifyReport {
                    procedures: vals[0] as usize,
                    instructions_checked: vals[1] as usize,
                    stores_checked: vals[2] as usize,
                    calls_checked: vals[3] as usize,
                    returns_checked: vals[4] as usize,
                    indirect_calls_checked: vals[5] as usize,
                    cached_procedures: vals[6] as usize,
                })
            } else if tag == 1 {
                None
            } else {
                return None;
            };
            let n_errors = r.u64()?;
            let mut errors = Vec::new();
            for _ in 0..n_errors {
                let word = u32::from_le_bytes(r.take(4)?.try_into().ok()?);
                let len = r.u64()? as usize;
                let message = String::from_utf8(r.take(len)?.to_vec()).ok()?;
                errors.push(VerifyError { word, message });
            }
            let entry = match (tag, report) {
                (0, Some(rep)) => CacheEntry::Binary(Ok(rep)),
                (1, None) => CacheEntry::Binary(Err(errors)),
                (2, Some(rep)) => CacheEntry::Proc(ProcEntry {
                    rel_errors: errors,
                    report: rep,
                }),
                _ => return None,
            };
            map.insert(key, entry);
        }
        if !r.0.is_empty() {
            return None; // trailing garbage under a valid checksum
        }
        Some(map)
    }
}

/// Bounds-checked cursor over the serialised payload.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_field_separated() {
        let mut a = Fnv::new();
        a.bytes(b"ab");
        a.bytes(b"c");
        let mut b = Fnv::new();
        b.bytes(b"a");
        b.bytes(b"bc");
        assert_ne!(
            a.finish(),
            b.finish(),
            "length prefixes must prevent field aliasing"
        );
        let mut c = Fnv::new();
        c.bytes(b"ab");
        c.bytes(b"c");
        assert_eq!(a.finish(), c.finish());
    }

    fn populated_cache() -> VerifyCache {
        let cache = VerifyCache::new();
        let report = VerifyReport {
            procedures: 3,
            instructions_checked: 120,
            stores_checked: 14,
            calls_checked: 5,
            returns_checked: 3,
            indirect_calls_checked: 1,
            cached_procedures: 0,
        };
        cache.store_binary(0xAAAA, &Ok(report.clone()));
        cache.store_binary(
            0xBBBB,
            &Err(vec![VerifyError {
                word: 17,
                message: "tainted store through public pointer".into(),
            }]),
        );
        cache.store_proc(
            0xCCCC,
            100,
            &ProcOutcome {
                errors: vec![VerifyError {
                    word: 108,
                    message: "missing lower-bound check".into(),
                }],
                report,
            },
        );
        cache
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("confllvm-cache-{tag}-{}", std::process::id()))
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let cache = populated_cache();
        let path = tmp_path("roundtrip");
        cache.save(&path).unwrap();
        let loaded = VerifyCache::load(&path);
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.stats().entries, 3);
        // Deterministic serialisation: identical content, byte for byte.
        assert_eq!(cache.serialize(), loaded.serialize());
        // The loaded entries behave like the originals, including the
        // magic-word rebase on procedure hits.
        assert!(loaded.lookup_binary(0xAAAA).unwrap().is_ok());
        let errs = loaded.lookup_binary(0xBBBB).unwrap().unwrap_err();
        assert_eq!(errs[0].word, 17);
        let outcome = loaded.lookup_proc(0xCCCC, 200).unwrap();
        assert_eq!(
            outcome.errors[0].word, 208,
            "relative offsets must rebase onto the new magic word"
        );
        assert_eq!(loaded.stats().hits, 3, "stats start cold after a load");
    }

    #[test]
    fn tampered_stale_or_truncated_files_fall_back_cold() {
        let cache = populated_cache();
        let path = tmp_path("tamper");
        cache.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one payload byte: checksum mismatch.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(VerifyCache::load(&path).stats().entries, 0);

        // Stale format version (checksum recomputed so only the version
        // check can reject it).
        let mut stale = good.clone();
        stale[8] = 0xFF;
        let body_len = stale.len() - 8;
        let mut h = Fnv::new();
        for &b in &stale[..body_len] {
            h.u8(b);
        }
        stale.splice(body_len.., h.finish().to_le_bytes());
        std::fs::write(&path, &stale).unwrap();
        assert_eq!(VerifyCache::load(&path).stats().entries, 0);

        // Truncation, and a missing file altogether.
        std::fs::write(&path, &good[..good.len() / 3]).unwrap();
        assert_eq!(VerifyCache::load(&path).stats().entries, 0);
        std::fs::remove_file(&path).ok();
        assert_eq!(VerifyCache::load(&path).stats().entries, 0);
    }

    #[test]
    fn binary_hash_ignores_name_but_not_words() {
        let mut a = Binary {
            words: vec![1, 2, 3],
            header: BinaryHeader {
                cfi: true,
                scheme: confllvm_machine::Scheme::Mpx,
                ..Default::default()
            },
        };
        let h1 = binary_content_hash(&a);
        a.header.name = "renamed".to_string();
        assert_eq!(h1, binary_content_hash(&a), "name must not affect the hash");
        a.words[1] = 99;
        assert_ne!(h1, binary_content_hash(&a));
    }
}
