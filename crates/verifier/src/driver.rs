//! The verification driver: serial or work-queue-parallel over procedures,
//! optionally backed by a [`VerifyCache`], plus the fleet driver that
//! schedules many binaries over one worker pool.
//!
//! ConfVerify's per-procedure scan reads only shared immutable state (see
//! [`crate::check`]), so the parallel driver is a plain work queue: an atomic
//! index over the procedure list, one checker per worker, outcomes merged in
//! procedure order so the result — errors, counters, everything — is
//! byte-identical to the serial scan regardless of thread count.
//!
//! Timing note: besides host wall time, the fleet driver reports
//! *work/makespan* accounting (total per-task busy time and the maximum
//! per-worker busy time).  Wall time on a loaded or single-core CI box
//! under-reports parallelism; the makespan is the schedule the work queue
//! actually produced and is what the `verify_scale` figures quote, in the
//! same spirit as the simulator quoting simulated cycles rather than host
//! seconds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use confllvm_machine::Binary;

use crate::cache::{binary_content_hash, header_ctx_hash, proc_content_hash, VerifyCache};
use crate::check::{check_procedure, Proc, ProcOutcome, Shared};
use crate::{VerifyError, VerifyReport};

/// How to run verification.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyOptions {
    /// Worker threads for the per-procedure work queue.  `0` (the default)
    /// means one per available core; `1` is the serial scan.
    pub threads: usize,
}

impl VerifyOptions {
    /// The serial single-threaded scan (what [`crate::verify`] runs).
    pub fn serial() -> Self {
        VerifyOptions { threads: 1 }
    }

    /// One worker per available core.
    pub fn parallel() -> Self {
        VerifyOptions { threads: 0 }
    }

    /// Exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        VerifyOptions { threads }
    }

    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Verify a binary under explicit options, optionally consulting (and
/// filling) a content-hash cache.  Produces exactly the result of
/// [`crate::verify`]: same report counters, same errors in the same order.
pub fn verify_with(
    binary: &Binary,
    opts: &VerifyOptions,
    cache: Option<&VerifyCache>,
) -> Result<VerifyReport, Vec<VerifyError>> {
    let rec = confllvm_obs::recorder();
    let mut obs_span = rec.span("verifier", "verify.binary");
    let binary_key = cache.map(|c| (c, binary_content_hash(binary)));
    if let Some((c, key)) = binary_key {
        if let Some(mut cached) = c.lookup_binary(key) {
            if let Ok(report) = &mut cached {
                report.cached_procedures = report.procedures;
            }
            rec.count("verify.cache.binary_hits", 1);
            if obs_span.active() {
                obs_span.attr("cached", true);
                obs_span.attr("accepted", cached.is_ok());
            }
            return cached;
        }
        rec.count("verify.cache.binary_misses", 1);
    }
    let shared = Shared::new(binary)?;
    let procs = shared.discover_procedures();
    let mut errors = Vec::new();
    let mut report = VerifyReport::default();
    if procs.is_empty() {
        errors.push(VerifyError {
            word: 0,
            message: "no procedures found (no call magic words)".to_string(),
        });
    }
    let outcomes = run_procs(&shared, &procs, opts.effective_threads(), cache);
    for (outcome, was_hit) in outcomes {
        report.absorb(&outcome.report);
        if was_hit {
            report.cached_procedures += 1;
        }
        errors.extend(outcome.errors);
    }
    let result = if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    };
    if let Some((c, key)) = binary_key {
        c.store_binary(key, &result);
    }
    if obs_span.active() {
        obs_span.attr("cached", false);
        obs_span.attr("procedures", procs.len());
        obs_span.attr("accepted", result.is_ok());
    }
    result
}

/// Check every procedure, serially or over a work queue.  Returns outcomes
/// in procedure order with a was-cache-hit flag each.
///
/// With the recorder enabled, each procedure records a `verifier`-layer
/// span (magic word, cache hit, error count) and the cache lookups feed
/// the `verify.cache.proc_*` counters; the parallel path additionally
/// accounts each task's wait between queue creation and pickup under
/// `verify.queue_wait_nanos`.
fn run_procs(
    shared: &Shared<'_>,
    procs: &[Proc],
    threads: usize,
    cache: Option<&VerifyCache>,
) -> Vec<(ProcOutcome, bool)> {
    let rec = confllvm_obs::recorder();
    let header_ctx = cache.map(|_| header_ctx_hash(&shared.binary.header));
    let check_one = |p: &Proc| -> (ProcOutcome, bool) {
        let mut span = rec.span("verifier", "verify.proc");
        let (outcome, was_hit) = if let (Some(c), Some(ctx)) = (cache, header_ctx) {
            let key = proc_content_hash(shared, p, ctx);
            if let Some(hit) = c.lookup_proc(key, p.magic_word) {
                rec.count("verify.cache.proc_hits", 1);
                (hit, true)
            } else {
                rec.count("verify.cache.proc_misses", 1);
                let outcome = check_procedure(shared, p);
                c.store_proc(key, p.magic_word, &outcome);
                (outcome, false)
            }
        } else {
            (check_procedure(shared, p), false)
        };
        if span.active() {
            span.attr("magic_word", p.magic_word);
            span.attr("cache_hit", was_hit);
            span.attr("errors", outcome.errors.len());
        }
        (outcome, was_hit)
    };
    let workers = threads.max(1).min(procs.len().max(1));
    if workers <= 1 {
        return procs.iter().map(check_one).collect();
    }
    // Queue-wait accounting: time from queue creation to each task's
    // pickup.  Only sampled when tracing, so the untraced hot path never
    // reads the clock.
    let queued_at = rec.enabled().then(Instant::now);
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<(ProcOutcome, bool)>> = procs.iter().map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(p) = procs.get(i) else { break };
                if let Some(t0) = queued_at {
                    rec.count("verify.queue_tasks", 1);
                    rec.count("verify.queue_wait_nanos", t0.elapsed().as_nanos() as u64);
                }
                let out = check_one(p);
                assert!(slots[i].set(out).is_ok(), "each slot is claimed once");
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every procedure was checked"))
        .collect()
}

/// What verifying a fleet of binaries cost and produced.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-binary results, in input order.
    pub results: Vec<Result<VerifyReport, Vec<VerifyError>>>,
    /// Host wall time for the whole fleet, microseconds.
    pub wall_micros: u128,
    /// Sum of every task's measured busy time — the serial cost of the
    /// schedule's work.
    pub total_task_micros: u128,
    /// Makespan of the greedy work-queue schedule of the measured task times
    /// over the workers — what the fleet costs once each worker runs on its
    /// own core.  (Host wall time on a shared or single-core box mixes in
    /// scheduler noise; this is the schedule the queue actually computes.)
    pub makespan_micros: u128,
    /// Workers the queue ran with.
    pub threads: usize,
}

impl FleetReport {
    /// How many binaries were verifier-accepted.
    pub fn accepted(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Work/makespan speedup of the schedule over the serial scan (1.0 for a
    /// single worker).
    pub fn modeled_speedup(&self) -> f64 {
        if self.makespan_micros == 0 {
            return 1.0;
        }
        self.total_task_micros as f64 / self.makespan_micros as f64
    }
}

/// Verify many binaries over one work queue (one task per binary; each task
/// runs the serial per-procedure scan so binary-level parallelism composes
/// with, rather than fights, the per-binary queue).  Results come back in
/// input order; per-worker busy times feed the makespan accounting.
pub fn verify_fleet(
    binaries: &[&Binary],
    opts: &VerifyOptions,
    cache: Option<&VerifyCache>,
) -> FleetReport {
    let workers = opts.effective_threads().max(1).min(binaries.len().max(1));
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    type Slot = OnceLock<(Result<VerifyReport, Vec<VerifyError>>, u128)>;
    let slots: Vec<Slot> = binaries.iter().map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(binary) = binaries.get(i) else { break };
                let mut span = confllvm_obs::recorder().span("verifier", "verify.fleet_task");
                let t0 = Instant::now();
                let result = verify_with(binary, &VerifyOptions::serial(), cache);
                let micros = t0.elapsed().as_micros();
                if span.active() {
                    span.attr("task", i);
                    span.attr("accepted", result.is_ok());
                }
                assert!(
                    slots[i].set((result, micros)).is_ok(),
                    "each slot is claimed once"
                );
            });
        }
    });
    let wall_micros = started.elapsed().as_micros();
    let mut results = Vec::with_capacity(binaries.len());
    let mut task_micros = Vec::with_capacity(binaries.len());
    for s in slots {
        let (r, micros) = s.into_inner().expect("every binary was verified");
        task_micros.push(micros);
        results.push(r);
    }
    let total_task_micros: u128 = task_micros.iter().sum();
    // Greedy queue schedule: each task goes to the worker that frees up
    // first, exactly the assignment the work queue makes when every worker
    // has its own core.
    let mut loads = vec![0u128; workers];
    for &t in &task_micros {
        if let Some(min) = loads.iter_mut().min() {
            *min += t;
        }
    }
    let makespan_micros = loads.into_iter().max().unwrap_or(0);
    FleetReport {
        results,
        wall_micros,
        total_task_micros,
        makespan_micros,
        threads: workers,
    }
}
