//! The parallel driver and the content-hash cache must be *invisible*:
//! byte-identical errors and counters versus the serial scan, cache hits
//! only where content is provably unchanged, and — the security property —
//! a tampered binary must be rejected even when the cache is warm from its
//! untampered sibling.

use confllvm_core::{compile, compile_for, CompileOptions, Config};
use confllvm_machine::{Binary, BndReg, MInst};
use confllvm_verify::{
    binary_content_hash, verify, verify_fleet, verify_with, VerifyCache, VerifyOptions,
};

/// A service with several functions so the per-procedure queue has real work.
fn service_source(salt: i64) -> String {
    format!(
        "
        extern void read_passwd(char *u, private char *p, int n);
        extern void encrypt(private char *src, char *dst, int n);
        extern int send(int fd, char *buf, int n);

        private int digest(private char *pw, int n) {{
            int i;
            int acc = {salt};
            for (i = 0; i < n; i = i + 1) {{ acc = acc + pw[i] * 31; }}
            return acc;
        }}

        int checksum(char *buf, int n) {{
            int i;
            int acc = 0;
            for (i = 0; i < n; i = i + 1) {{ acc = acc + buf[i]; }}
            return acc;
        }}

        int handle(int n) {{
            char user[8];
            user[0] = 'a'; user[1] = 0;
            char pw[16];
            read_passwd(user, pw, 16);
            private int d = digest(pw, 16);
            char out[16];
            encrypt(pw, out, 16);
            int c = checksum(out, 16);
            send(1, out, 16);
            return n + c;
        }}

        int main() {{ return handle(0); }}
    "
    )
}

fn built(source: &str, config: Config) -> Binary {
    compile_for(source, config).expect("compiles").binary()
}

/// Strip the private-region bound checks, as a malicious build would.
fn tampered(source: &str, config: Config) -> Binary {
    let compiled = compile_for(source, config).unwrap();
    let mut program = compiled.program.clone();
    let mut dropped = 0;
    for inst in &mut program.insts {
        if matches!(
            inst,
            MInst::BndCheck {
                bnd: BndReg::Bnd1,
                ..
            }
        ) {
            *inst = MInst::Nop;
            dropped += 1;
        }
    }
    assert!(dropped > 0, "build must contain private-region checks");
    program.encode()
}

#[test]
fn parallel_scan_is_byte_identical_to_serial() {
    for config in [Config::OurMpx, Config::OurSeg] {
        let good = built(&service_source(7), config);
        let serial = verify(&good).expect("accepted");
        for threads in [2, 4, 8] {
            let par = verify_with(&good, &VerifyOptions::with_threads(threads), None)
                .expect("accepted in parallel");
            assert_eq!(serial.procedures, par.procedures);
            assert_eq!(serial.instructions_checked, par.instructions_checked);
            assert_eq!(serial.stores_checked, par.stores_checked);
            assert_eq!(serial.calls_checked, par.calls_checked);
            assert_eq!(serial.returns_checked, par.returns_checked);
            assert_eq!(par.cached_procedures, 0);
        }
    }
    // Same equivalence on the rejecting path: identical errors, same order.
    let bad = tampered(&service_source(7), Config::OurMpx);
    let serial_errs = verify(&bad).unwrap_err();
    for threads in [2, 8] {
        let par_errs = verify_with(&bad, &VerifyOptions::with_threads(threads), None).unwrap_err();
        assert_eq!(
            serial_errs, par_errs,
            "{threads} threads changed the errors"
        );
    }
}

#[test]
fn unchanged_binary_reverifies_through_the_binary_level_cache() {
    let cache = VerifyCache::new();
    let good = built(&service_source(7), Config::OurMpx);
    let first = verify_with(&good, &VerifyOptions::serial(), Some(&cache)).expect("accepted");
    assert_eq!(first.cached_procedures, 0);
    let after_first = cache.stats();
    assert!(after_first.entries > 0);

    // Re-encode the same program: same content, new allocation.
    let again = built(&service_source(7), Config::OurMpx);
    assert_eq!(binary_content_hash(&good), binary_content_hash(&again));
    let second = verify_with(&again, &VerifyOptions::serial(), Some(&cache)).expect("accepted");
    assert_eq!(
        second.cached_procedures, second.procedures,
        "an unchanged binary must be a pure cache hit"
    );
    assert_eq!(second.procedures, first.procedures);
    assert_eq!(second.stores_checked, first.stores_checked);
    let after_second = cache.stats();
    assert_eq!(
        after_second.hits,
        after_first.hits + 1,
        "exactly one binary-level hit"
    );
}

#[test]
fn unchanged_procedures_hit_inside_a_changed_binary() {
    let cache = VerifyCache::new();
    let a = built(&service_source(7), Config::OurMpx);
    let first = verify_with(&a, &VerifyOptions::serial(), Some(&cache)).expect("accepted");
    assert!(first.procedures >= 4, "need several procedures");

    // Change one constant inside `digest` — same instruction count, so the
    // other procedures keep their exact word spans.
    let b = built(&service_source(9), Config::OurMpx);
    assert_ne!(binary_content_hash(&a), binary_content_hash(&b));
    let second = verify_with(&b, &VerifyOptions::serial(), Some(&cache)).expect("accepted");
    assert_eq!(second.procedures, first.procedures);
    assert!(
        second.cached_procedures >= first.procedures - 1,
        "only the changed procedure may miss: {} of {} hit",
        second.cached_procedures,
        second.procedures
    );
    assert!(
        second.cached_procedures < second.procedures,
        "the changed procedure must re-verify"
    );
}

#[test]
fn tampered_binary_is_rejected_even_with_a_warm_cache() {
    let cache = VerifyCache::new();
    let source = service_source(7);
    let good = built(&source, Config::OurMpx);
    verify_with(&good, &VerifyOptions::serial(), Some(&cache)).expect("accepted");

    let bad = tampered(&source, Config::OurMpx);
    let errs = verify_with(&bad, &VerifyOptions::with_threads(4), Some(&cache))
        .expect_err("stripped checks must still be rejected");
    assert_eq!(errs, verify(&bad).unwrap_err(), "cache changed the verdict");

    // And the rejection itself is cached: re-verifying the tampered binary
    // is a binary-level hit with the same errors.
    let before = cache.stats();
    let errs2 = verify_with(&bad, &VerifyOptions::serial(), Some(&cache)).unwrap_err();
    assert_eq!(errs, errs2);
    assert_eq!(cache.stats().hits, before.hits + 1);
}

#[test]
fn fleet_driver_matches_individual_verification_and_models_speedup() {
    let mut binaries = Vec::new();
    for salt in 0..6 {
        binaries.push(built(&service_source(salt), Config::OurMpx));
    }
    for kernel in confllvm_workloads::spec::KERNELS.iter().take(3) {
        let opts = CompileOptions {
            config: Config::OurMpx,
            entry: "run".to_string(),
            ..Default::default()
        };
        binaries.push(compile(kernel.source, &opts).unwrap().binary());
    }
    let refs: Vec<&Binary> = binaries.iter().collect();
    let serial = verify_fleet(&refs, &VerifyOptions::serial(), None);
    assert_eq!(serial.threads, 1);
    assert_eq!(serial.accepted(), refs.len());
    assert_eq!(serial.makespan_micros, serial.total_task_micros);

    let par = verify_fleet(&refs, &VerifyOptions::with_threads(4), None);
    assert_eq!(par.accepted(), refs.len());
    for (a, b) in serial.results.iter().zip(&par.results) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.procedures, b.procedures);
        assert_eq!(a.instructions_checked, b.instructions_checked);
    }
    assert!(par.threads >= 2);
    assert!(
        par.modeled_speedup() > 1.5,
        "9 similar tasks over 4 workers must schedule well: {:.2}x",
        par.modeled_speedup()
    );
}
