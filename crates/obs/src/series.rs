//! Windowed time-series telemetry and the SLO burn-rate monitor.
//!
//! The serving stack's virtual-time scheduler aggregates one
//! [`WindowStat`] per admission window — request rate, sheds/defers, queue
//! depth, p99/p99.9 virtual latency, CoW faults — into a bounded
//! [`WindowSeries`] ring.  Everything is integer arithmetic over simulated
//! cycles, so the series (and its JSONL export) is byte-stable across
//! hosts, exactly like every other simulated observable in the workspace.
//!
//! On top of the series, [`SloMonitor`] evaluates classic multi-window
//! burn-rate rules: a window's requests are **good** (completed within the
//! SLO) or **bad** (shed, aged out, or completed late), and a rule fires
//! when the bad fraction over the trailing `k` windows exceeds its
//! per-mille threshold.  The fast rule (few windows, high threshold)
//! catches sudden overload; the slow rule (many windows, low threshold)
//! catches sustained degradation.  Rule edges are counted — an overload
//! burst that stays over threshold for ten windows is **one** breach —
//! and emitted as `slo.breach.*` counters/instants when the recorder is
//! enabled.

use std::collections::VecDeque;

/// Default bound on a [`WindowSeries`] ring.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Everything one admission window aggregated.  All integers, all derived
/// from simulated state — deterministic by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStat {
    /// Window sequence number (0-based).
    pub index: u64,
    /// Window start in simulated cycles.
    pub start_cycle: u64,
    /// New arrivals that landed in this window (admitted or not).
    pub arrivals: u64,
    /// Entries pushed into the dispatch queue (deferred retries + new).
    pub admitted: u64,
    /// Requests dispatched (and completed) during this window.
    pub executed: u64,
    /// Arrivals shed in this window (admission overflow + aged deferrals).
    pub shed: u64,
    /// Deferral events in this window.
    pub deferred: u64,
    /// Queue depth after admission, before dispatch.
    pub queue_depth: u64,
    /// p99 / p99.9 virtual latency of this window's completions (0 when the
    /// window completed nothing).
    pub p99_cycles: u64,
    pub p999_cycles: u64,
    /// Copy-on-write faults charged to this window's requests.
    pub cow_faults: u64,
    /// Verifier-cache hits attributed to this window (checkout-time work;
    /// the serving layer charges it to the window it happened in).
    pub verify_cache_hits: u64,
    /// Requests that met the latency SLO in this window.
    pub good: u64,
    /// Requests that missed it: shed, aged out, or completed late.
    pub bad: u64,
}

/// A bounded ring of [`WindowStat`]s.  When full, the oldest window is
/// dropped and counted — the same discipline as the trace recorder's ring.
#[derive(Debug, Clone)]
pub struct WindowSeries {
    capacity: usize,
    windows: VecDeque<WindowStat>,
    dropped: u64,
}

impl Default for WindowSeries {
    fn default() -> Self {
        WindowSeries::new(DEFAULT_SERIES_CAPACITY)
    }
}

impl WindowSeries {
    pub fn new(capacity: usize) -> Self {
        WindowSeries {
            capacity: capacity.max(1),
            windows: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append a window; drops (and counts) the oldest when full.
    pub fn push(&mut self, w: WindowStat) {
        if self.windows.len() >= self.capacity {
            self.windows.pop_front();
            self.dropped += 1;
        }
        self.windows.push_back(w);
    }

    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows dropped to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn iter(&self) -> impl Iterator<Item = &WindowStat> {
        self.windows.iter()
    }

    pub fn last(&self) -> Option<&WindowStat> {
        self.windows.back()
    }

    /// Mutable access to the oldest retained window (the serving layer uses
    /// it to charge serve-start checkout work to the window it happened in).
    pub fn first_mut(&mut self) -> Option<&mut WindowStat> {
        self.windows.front_mut()
    }

    /// Serialise as JSONL: one meta object line, then one object per
    /// retained window.  `meta_text` values are emitted as JSON strings,
    /// `meta_nums` as integers; every per-window field is an integer, so
    /// the export is byte-deterministic.
    pub fn jsonl(&self, meta_text: &[(&str, &str)], meta_nums: &[(&str, u64)]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"confllvm.metrics-series.v1\",\"windows\":{},\"dropped\":{},\"capacity\":{}",
            self.windows.len(),
            self.dropped,
            self.capacity
        ));
        for (k, v) in meta_text {
            out.push_str(&format!(",\"{k}\":\"{v}\""));
        }
        for (k, v) in meta_nums {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push_str("}\n");
        for w in &self.windows {
            out.push_str(&format!(
                "{{\"window\":{},\"start_cycle\":{},\"arrivals\":{},\"admitted\":{},\"executed\":{},\"shed\":{},\"deferred\":{},\"queue_depth\":{},\"p99_cycles\":{},\"p999_cycles\":{},\"cow_faults\":{},\"verify_cache_hits\":{},\"good\":{},\"bad\":{}}}\n",
                w.index,
                w.start_cycle,
                w.arrivals,
                w.admitted,
                w.executed,
                w.shed,
                w.deferred,
                w.queue_depth,
                w.p99_cycles,
                w.p999_cycles,
                w.cow_faults,
                w.verify_cache_hits,
                w.good,
                w.bad,
            ));
        }
        out
    }
}

/// Multi-window burn-rate rules.  A window's requests split into good/bad
/// (see [`WindowStat`]); a rule fires while
/// `sum(bad) * 1000 > threshold_per_mille * sum(good + bad)` over its
/// trailing window count.  Integer arithmetic only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloRules {
    /// Fast-burn rule: few windows, high threshold — pages on sudden
    /// overload.
    pub fast_windows: usize,
    pub fast_burn_per_mille: u64,
    /// Slow-burn rule: many windows, low threshold — catches sustained
    /// degradation a short burst would not show.
    pub slow_windows: usize,
    pub slow_burn_per_mille: u64,
}

impl Default for SloRules {
    fn default() -> Self {
        SloRules {
            fast_windows: 5,
            fast_burn_per_mille: 200,
            slow_windows: 60,
            slow_burn_per_mille: 50,
        }
    }
}

/// What the monitor counted over a whole run.  Breaches are rule *edges*:
/// entering the burning state counts once, however long it lasts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloReport {
    pub windows: u64,
    pub good: u64,
    pub bad: u64,
    pub fast_breaches: u64,
    pub slow_breaches: u64,
}

impl SloReport {
    pub fn total_breaches(&self) -> u64 {
        self.fast_breaches + self.slow_breaches
    }
}

/// Evaluates [`SloRules`] over a stream of windows.  Feed every window in
/// order via [`SloMonitor::observe`]; read the counted result with
/// [`SloMonitor::report`].  Breach edges also emit `slo.breach.fast` /
/// `slo.breach.slow` counters and instant events into the process recorder
/// (free when tracing is off, like all instrumentation).
#[derive(Debug, Clone)]
pub struct SloMonitor {
    rules: SloRules,
    /// Trailing (total, bad) per window, bounded by the longer rule.
    recent: VecDeque<(u64, u64)>,
    fast_burning: bool,
    slow_burning: bool,
    report: SloReport,
}

impl SloMonitor {
    pub fn new(rules: SloRules) -> Self {
        SloMonitor {
            rules,
            recent: VecDeque::new(),
            fast_burning: false,
            slow_burning: false,
            report: SloReport::default(),
        }
    }

    fn burning(&self, windows: usize, per_mille: u64) -> bool {
        let n = windows.max(1).min(self.recent.len());
        let mut total = 0u64;
        let mut bad = 0u64;
        for &(t, b) in self.recent.iter().rev().take(n) {
            total += t;
            bad += b;
        }
        total > 0 && bad * 1000 > per_mille * total
    }

    /// Feed the next window.  Returns whether any rule newly fired on it.
    pub fn observe(&mut self, w: &WindowStat) -> bool {
        let keep = self.rules.fast_windows.max(self.rules.slow_windows).max(1);
        if self.recent.len() >= keep {
            self.recent.pop_front();
        }
        self.recent.push_back((w.good + w.bad, w.bad));
        self.report.windows += 1;
        self.report.good += w.good;
        self.report.bad += w.bad;

        let rec = crate::recorder();
        let mut fired = false;
        let fast = self.burning(self.rules.fast_windows, self.rules.fast_burn_per_mille);
        if fast && !self.fast_burning {
            self.report.fast_breaches += 1;
            fired = true;
            rec.count("slo.breach.fast", 1);
            let mut i = rec.instant("server", "slo.breach.fast");
            i.attr("window", w.index);
        }
        self.fast_burning = fast;
        let slow = self.burning(self.rules.slow_windows, self.rules.slow_burn_per_mille);
        if slow && !self.slow_burning {
            self.report.slow_breaches += 1;
            fired = true;
            rec.count("slo.breach.slow", 1);
            let mut i = rec.instant("server", "slo.breach.slow");
            i.attr("window", w.index);
        }
        self.slow_burning = slow;
        fired
    }

    pub fn report(&self) -> SloReport {
        self.report
    }

    /// Evaluate rules over a whole recorded series in one call.
    pub fn evaluate(rules: SloRules, series: &WindowSeries) -> SloReport {
        let mut m = SloMonitor::new(rules);
        for w in series.iter() {
            m.observe(w);
        }
        m.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(index: u64, good: u64, bad: u64) -> WindowStat {
        WindowStat {
            index,
            start_cycle: index * 100,
            good,
            bad,
            ..WindowStat::default()
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut s = WindowSeries::new(3);
        for i in 0..5 {
            s.push(window(i, 1, 0));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.iter().next().unwrap().index, 2, "oldest dropped first");
        assert_eq!(s.last().unwrap().index, 4);
    }

    #[test]
    fn jsonl_has_meta_then_one_line_per_window() {
        let mut s = WindowSeries::new(8);
        s.push(window(0, 3, 1));
        s.push(window(1, 4, 0));
        let out = s.jsonl(&[("workload", "nginx")], &[("sessions", 10)]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"confllvm.metrics-series.v1\""));
        assert!(lines[0].contains("\"windows\":2"));
        assert!(lines[0].contains("\"workload\":\"nginx\""));
        assert!(lines[0].contains("\"sessions\":10"));
        assert!(lines[1].contains("\"window\":0"));
        assert!(lines[1].contains("\"good\":3"));
        assert!(lines[1].contains("\"bad\":1"));
        assert!(lines[2].contains("\"window\":1"));
    }

    #[test]
    fn fast_burn_fires_once_per_excursion() {
        let rules = SloRules {
            fast_windows: 2,
            fast_burn_per_mille: 200,
            slow_windows: 60,
            slow_burn_per_mille: 50,
        };
        let mut m = SloMonitor::new(rules);
        // Quiet, then a 3-window burst, quiet again, then a second burst.
        assert!(!m.observe(&window(0, 10, 0)));
        assert!(m.observe(&window(1, 2, 8)), "burst start must fire");
        assert!(!m.observe(&window(2, 2, 8)), "still burning, no new edge");
        m.observe(&window(3, 2, 8));
        m.observe(&window(4, 10, 0));
        m.observe(&window(5, 10, 0));
        assert!(
            m.observe(&window(6, 0, 10)),
            "second excursion, second edge"
        );
        let r = m.report();
        assert_eq!(r.fast_breaches, 2);
        assert_eq!(r.windows, 7);
        assert_eq!(r.bad, 34);
    }

    #[test]
    fn slow_burn_needs_sustained_badness() {
        let rules = SloRules {
            fast_windows: 1,
            fast_burn_per_mille: 900,
            slow_windows: 10,
            slow_burn_per_mille: 100,
        };
        let mut m = SloMonitor::new(rules);
        // One bad window out of ten: 10% of requests bad — at the slow
        // threshold but not over it.
        for i in 0..9 {
            m.observe(&window(i, 9, 0));
        }
        m.observe(&window(9, 0, 9));
        assert_eq!(m.report().slow_breaches, 0);
        // Two more bad windows push the trailing fraction past 10%.
        m.observe(&window(10, 0, 9));
        assert_eq!(m.report().slow_breaches, 1);
    }

    #[test]
    fn empty_windows_never_burn() {
        let mut m = SloMonitor::new(SloRules::default());
        for i in 0..100 {
            m.observe(&window(i, 0, 0));
        }
        let r = m.report();
        assert_eq!(r.total_breaches(), 0);
        assert_eq!(r.windows, 100);
    }

    #[test]
    fn evaluate_runs_the_whole_series() {
        let mut s = WindowSeries::new(64);
        for i in 0..5 {
            s.push(window(i, 10, 0));
        }
        for i in 5..8 {
            s.push(window(i, 0, 10));
        }
        let r = SloMonitor::evaluate(SloRules::default(), &s);
        assert_eq!(r.fast_breaches, 1);
        assert_eq!(r.bad, 30);
    }
}
