//! Exporters: Chrome `trace_event` JSON (Perfetto-loadable), a metrics JSON
//! document, and a human-readable summary table — plus the validator CI
//! runs over an emitted trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::attr::write_json_string;
use crate::json::{parse_json, Json};
use crate::recorder::{EventKind, TraceSnapshot};

/// Render a snapshot as Chrome `trace_event` JSON (the "JSON Object Format"
/// with a `traceEvents` array).  Load it in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`: spans are `ph:"X"`
/// complete events with microsecond timestamps; lifecycle markers are
/// `ph:"i"` instants; attributes (and attributed simulated cycles) appear
/// under `args`.
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(snap.event_count() * 128 + 64);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for thread in &snap.threads {
        for e in &thread.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match e.kind {
                EventKind::Complete => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
                        thread.tid,
                        e.start_nanos as f64 / 1_000.0,
                        e.dur_nanos as f64 / 1_000.0,
                    );
                }
                EventKind::Instant => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
                        thread.tid,
                        e.start_nanos as f64 / 1_000.0,
                    );
                }
            }
            out.push_str(",\"cat\":");
            write_json_string(e.cat, &mut out);
            out.push_str(",\"name\":");
            write_json_string(e.name, &mut out);
            out.push_str(",\"args\":{");
            let mut first_arg = true;
            if e.cycles > 0 {
                let _ = write!(out, "\"cycles\":{}", e.cycles);
                first_arg = false;
            }
            for (key, value) in &e.attrs {
                if !first_arg {
                    out.push(',');
                }
                first_arg = false;
                write_json_string(key, &mut out);
                out.push(':');
                value.write_json(&mut out);
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"");
    // Per-thread ring-buffer drop counts, so a consumer can tell a complete
    // trace from one that silently wrapped.  Only threads that actually
    // dropped appear; a fully-captured trace has no `droppedEvents` key.
    let mut first_drop = true;
    for thread in &snap.threads {
        if thread.dropped == 0 {
            continue;
        }
        out.push_str(if first_drop {
            ",\"droppedEvents\":{"
        } else {
            ","
        });
        first_drop = false;
        let _ = write!(out, "\"{}\":{}", thread.tid, thread.dropped);
    }
    if !first_drop {
        out.push('}');
    }
    out.push_str("}\n");
    out
}

/// Render the snapshot's counters, histograms and per-span aggregates as a
/// standalone metrics JSON document.
pub fn metrics_json(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"dropped_events\": {},", snap.dropped());
    out.push_str("  \"counters\": {");
    let mut first = true;
    for (name, value) in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_json_string(name, &mut out);
        let _ = write!(out, ": {value}");
    }
    out.push_str("\n  },\n");
    out.push_str("  \"histograms\": {");
    first = true;
    for (name, h) in &snap.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_json_string(name, &mut out);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.mean(),
            h.percentile(50),
            h.percentile(90),
            h.percentile(99),
        );
    }
    out.push_str("\n  },\n");
    out.push_str("  \"spans\": {");
    first = true;
    for (key, agg) in span_aggregates(snap) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_json_string(&key, &mut out);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"host_nanos\": {}, \"cycles\": {}}}",
            agg.count, agg.host_nanos, agg.cycles
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

#[derive(Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    host_nanos: u64,
    cycles: u64,
}

/// Aggregate events by `cat/name`, in sorted key order.
fn span_aggregates(snap: &TraceSnapshot) -> Vec<(String, SpanAgg)> {
    let mut map: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for e in snap.events() {
        let agg = map.entry(format!("{}/{}", e.cat, e.name)).or_default();
        agg.count += 1;
        agg.host_nanos += e.dur_nanos;
        agg.cycles += e.cycles;
    }
    map.into_iter().collect()
}

/// Render the snapshot as a human-readable summary: per-span totals (count,
/// host time, attributed simulated cycles), then counters, then histogram
/// percentiles.
pub fn summary_table(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    out.push_str("== Observability summary\n");
    let _ = writeln!(
        out,
        "{:<40}{:>8}{:>12}{:>16}",
        "span (layer/name)", "count", "host ms", "sim cycles"
    );
    for (key, agg) in span_aggregates(snap) {
        let _ = writeln!(
            out,
            "{:<40}{:>8}{:>12.3}{:>16}",
            key,
            agg.count,
            agg.host_nanos as f64 / 1e6,
            agg.cycles
        );
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:<40}{value:>12}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        let _ = writeln!(
            out,
            "  {:<40}{:>8}{:>12}{:>10}{:>10}{:>10}",
            "", "count", "mean", "p50", "p99", "max"
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<40}{:>8}{:>12.1}{:>10}{:>10}{:>10}",
                name,
                h.count(),
                h.mean(),
                h.percentile(50),
                h.percentile(99),
                h.max()
            );
        }
    }
    if snap.dropped() > 0 {
        let _ = writeln!(
            out,
            "({} events dropped to ring wrap-around)",
            snap.dropped()
        );
    }
    out
}

/// What [`validate_chrome_trace`] found in a well-formed trace.
#[derive(Debug, Clone, Default)]
pub struct TraceCheck {
    /// Total trace events.
    pub events: usize,
    /// Events per category (the instrumented layers).
    pub categories: BTreeMap<String, usize>,
    /// Events per span/instant name, so callers can assert that specific
    /// operations (e.g. the block-engine's `vm.translate`) are covered.
    pub names: BTreeMap<String, usize>,
    /// Ring-buffer drops per thread (`tid` → count), from the trace's
    /// `droppedEvents` object.  Empty when nothing was dropped.
    pub dropped: BTreeMap<u64, u64>,
}

impl TraceCheck {
    /// The categories (layers) with no events, out of `required`.
    pub fn missing_categories(&self, required: &[&str]) -> Vec<String> {
        required
            .iter()
            .filter(|c| !self.categories.contains_key(**c))
            .map(|c| c.to_string())
            .collect()
    }

    /// The span/instant names with no events, out of `required`.
    pub fn missing_names(&self, required: &[&str]) -> Vec<String> {
        required
            .iter()
            .filter(|n| !self.names.contains_key(**n))
            .map(|n| n.to_string())
            .collect()
    }

    /// Total events dropped to ring wrap-around, across all threads.  A
    /// nonzero total means the trace is incomplete and span/category counts
    /// undercount reality.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }
}

/// Validate a Chrome `trace_event` JSON document: it must parse, carry a
/// `traceEvents` array, and every event must be a well-formed `X` or `i`
/// record with name, category and timestamps.  Returns per-category event
/// counts so callers can assert which layers are represented.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents` key".to_string())?
        .as_arr()
        .ok_or("`traceEvents` is not an array".to_string())?;
    let mut check = TraceCheck::default();
    for (i, e) in events.iter().enumerate() {
        let fail = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing `ph`"))?;
        if ph != "X" && ph != "i" {
            return Err(fail(&format!("unexpected phase `{ph}`")));
        }
        let cat = e
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing `cat`"))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing `name`"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| fail("missing `ts`"))?;
        if ts < 0.0 {
            return Err(fail("negative `ts`"));
        }
        if ph == "X" {
            let dur = e
                .get("dur")
                .and_then(Json::as_num)
                .ok_or_else(|| fail("`X` event without `dur`"))?;
            if dur < 0.0 {
                return Err(fail("negative `dur`"));
            }
        }
        check.events += 1;
        *check.categories.entry(cat.to_string()).or_insert(0) += 1;
        *check.names.entry(name.to_string()).or_insert(0) += 1;
    }
    if let Some(drops) = doc.get("droppedEvents") {
        let obj = drops
            .as_obj()
            .ok_or("`droppedEvents` is not an object".to_string())?;
        for (tid, count) in obj {
            let tid: u64 = tid
                .parse()
                .map_err(|_| format!("droppedEvents: non-numeric tid `{tid}`"))?;
            let count = count
                .as_num()
                .filter(|c| *c >= 0.0)
                .ok_or_else(|| format!("droppedEvents[{tid}]: not a non-negative number"))?;
            check.dropped.insert(tid, count as u64);
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_snapshot() -> TraceSnapshot {
        let rec = Recorder::new();
        rec.set_enabled(true);
        {
            let mut s = rec.span("compiler", "pass.const-fold");
            s.attr("changes", 3u64);
        }
        {
            let mut s = rec.span("vm", "vm.run");
            s.cycles(1234);
        }
        {
            let mut i = rec.instant("server", "registry.transition");
            i.attr("state", "active");
            i.attr("version", 7u64);
        }
        rec.count("verify.cache.proc_hits", 9);
        rec.record_hist("server.request.cycles", 500);
        rec.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_and_carries_categories() {
        let trace = chrome_trace_json(&sample_snapshot());
        let check = validate_chrome_trace(&trace).unwrap();
        assert_eq!(check.events, 3);
        assert_eq!(check.categories["compiler"], 1);
        assert_eq!(check.categories["vm"], 1);
        assert_eq!(check.categories["server"], 1);
        assert!(check.missing_categories(&["verifier"]) == vec!["verifier"]);
        // The instant kept its phase and the span its duration field.
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"cycles\":1234"));
        assert!(trace.contains("\"state\":\"active\""));
    }

    #[test]
    fn metrics_json_parses_and_reports_counters() {
        let metrics = metrics_json(&sample_snapshot());
        let doc = parse_json(&metrics).unwrap();
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("verify.cache.proc_hits")
                .unwrap()
                .as_num(),
            Some(9.0)
        );
        let hist = doc
            .get("histograms")
            .unwrap()
            .get("server.request.cycles")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_num(), Some(1.0));
        assert!(doc.get("spans").unwrap().get("vm/vm.run").is_some());
    }

    #[test]
    fn summary_table_mentions_every_section() {
        let table = summary_table(&sample_snapshot());
        assert!(table.contains("compiler/pass.const-fold"));
        assert!(table.contains("counters:"));
        assert!(table.contains("histograms:"));
        assert!(table.contains("verify.cache.proc_hits"));
    }

    #[test]
    fn dropped_events_round_trip_through_trace_and_validator() {
        // A clean trace carries no droppedEvents key and validates to zero.
        let clean = chrome_trace_json(&sample_snapshot());
        assert!(!clean.contains("droppedEvents"));
        let check = validate_chrome_trace(&clean).unwrap();
        assert!(check.dropped.is_empty());
        assert_eq!(check.dropped_total(), 0);

        // Overflow one thread's ring: the wrap count must surface per
        // thread (capacity is 2^16 events; see recorder::RING_CAPACITY).
        let rec = Recorder::new();
        rec.set_enabled(true);
        for _ in 0..(1 << 16) + 10 {
            rec.span("vm", "vm.run");
        }
        let snap = rec.snapshot();
        assert!(snap.dropped() > 0);
        let trace = chrome_trace_json(&snap);
        let check = validate_chrome_trace(&trace).unwrap();
        assert_eq!(check.dropped_total(), snap.dropped());
        assert_eq!(check.dropped.len(), 1);

        // Malformed droppedEvents objects are rejected.
        let bad = "{\"traceEvents\":[],\"droppedEvents\":{\"x\":1}}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("tid"));
        let neg = "{\"traceEvents\":[],\"droppedEvents\":{\"0\":-1}}";
        assert!(validate_chrome_trace(neg).is_err());
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        let no_dur = "{\"traceEvents\":[{\"ph\":\"X\",\"cat\":\"c\",\"name\":\"n\",\"ts\":1}]}";
        assert!(validate_chrome_trace(no_dur).unwrap_err().contains("dur"));
        let bad_ph = "{\"traceEvents\":[{\"ph\":\"Q\",\"cat\":\"c\",\"name\":\"n\",\"ts\":1}]}";
        assert!(validate_chrome_trace(bad_ph).is_err());
    }
}
