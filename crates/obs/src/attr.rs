//! Typed span/event attributes — the compile-time half of the redaction
//! boundary.
//!
//! Everything the recorder will ever serialise into a trace or metrics file
//! goes through [`AttrValue`].  The type has variants for numbers, booleans
//! and *`'static`* strings only, and the `From` impls cover exactly those
//! types.  There is deliberately **no** conversion from `String`, `&str`
//! (non-static), `&[u8]` or `Vec<u8>`: runtime byte payloads — which is what
//! private `World` state (passwords, secret files, request bodies) is — are
//! unrepresentable as attributes, so instrumentation cannot leak them even
//! by accident.  A `&'static str` is by construction a program literal,
//! known at compile time, and therefore cannot carry a secret that only
//! exists at run time.
//!
//! The run-time half of the boundary (a debug assertion scanning every
//! recorded event against registered private sentinels) lives in
//! [`crate::recorder`].

/// One attribute value: numbers, booleans, or compile-time string literals.
///
/// See the module docs for why there is no variant holding owned or
/// borrowed runtime bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// An unsigned counter-like value (cycles, pages, ids).
    U64(u64),
    /// A signed value (exit codes, deltas).
    I64(i64),
    /// A ratio or percentage.
    F64(f64),
    /// A flag (cache hit, verified).
    Bool(bool),
    /// A compile-time string literal (state names, pass names).
    Text(&'static str),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::I64(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Text(v)
    }
}

impl AttrValue {
    /// Append this value as a JSON scalar.
    pub(crate) fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            AttrValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v:.3}");
            }
            AttrValue::F64(_) => out.push_str("null"),
            AttrValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::Text(v) => write_json_string(v, out),
        }
    }
}

/// Append `s` as a JSON string with the required escapes.
pub(crate) fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_cover_the_scalar_types() {
        assert_eq!(AttrValue::from(3u64), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3usize), AttrValue::U64(3));
        assert_eq!(AttrValue::from(-3i64), AttrValue::I64(-3));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        assert_eq!(AttrValue::from("warm"), AttrValue::Text("warm"));
    }

    #[test]
    fn json_scalars_render_and_escape() {
        let render = |v: AttrValue| {
            let mut s = String::new();
            v.write_json(&mut s);
            s
        };
        assert_eq!(render(AttrValue::U64(7)), "7");
        assert_eq!(render(AttrValue::F64(1.5)), "1.500");
        assert_eq!(render(AttrValue::F64(f64::NAN)), "null");
        assert_eq!(render(AttrValue::Text("a\"b")), "\"a\\\"b\"");
    }
}
