//! The deterministic sampling profiler.
//!
//! Sampling is keyed to **simulated cycles**, not host time: the VM's block
//! engine asks the process-wide [`profiler`] once per thread run whether
//! sampling is on, and if so records one (stack, block, pending-check-site)
//! frame every `interval` virtual cycles at the block boundary that crosses
//! the sampling grid.  Because the grid lives in simulated time, two runs of
//! the same workload produce **byte-identical** profiles on any host — the
//! folded output and the derived tables are golden-able artifacts.
//!
//! The leak-safety rules of the recorder apply unchanged: every frame is a
//! `&'static` string obtained through [`intern`] (program symbols — function
//! names from compiled binaries), never runtime `World` bytes, and in debug
//! builds every interned name is scanned against the recorder's registered
//! private sentinels before it can enter a profile.
//!
//! Like the recorder, a disabled profiler is free on the hot path: the VM
//! performs one relaxed atomic load per thread run and one `Option` test per
//! block, and sampling never writes simulated state either way — profiled
//! and unprofiled runs have byte-identical observables and cycle counts.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default sampling interval in simulated cycles.  A prime, so fixed-period
/// loops in the workloads cannot alias with the sampling grid and hide
/// entire blocks from every sample.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 4093;

/// `check_word` value meaning "no bound check pending at the sample".
pub const NO_CHECK: u32 = u32::MAX;

/// One aggregated sample bucket: everything that identifies where a sample
/// landed.  `Ord` on the fields (thread, then stack, then site) fixes the
/// export order, so every exporter inherits determinism from the map.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SampleKey {
    /// Deterministic VM thread id (0 for single-threaded runs).
    pub tid: u64,
    /// Call stack, outermost caller first, the sampled procedure last.
    /// Frames are interned `&'static` program symbols (see [`intern`]).
    pub stack: Vec<&'static str>,
    /// Code word of the sampled block's leader.
    pub block_word: u32,
    /// Code word of the bound check the sample landed on, or [`NO_CHECK`].
    pub check_word: u32,
    /// The sampled block is a loop head (a back-edge target) — the signal
    /// that a pending check there is a hoisting candidate.
    pub loop_head: bool,
}

/// The process-wide sampling profiler.  Disabled (and free) until a driver
/// (`repro --section profile`, a test) enables it.
pub struct Profiler {
    on: AtomicBool,
    interval: AtomicU64,
    data: Mutex<BTreeMap<SampleKey, u64>>,
}

static GLOBAL: OnceLock<Profiler> = OnceLock::new();

/// The process-wide profiler instance the VM samples into.
pub fn profiler() -> &'static Profiler {
    GLOBAL.get_or_init(Profiler::new)
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A fresh, disabled profiler with the default interval.
    pub fn new() -> Self {
        Profiler {
            on: AtomicBool::new(false),
            interval: AtomicU64::new(DEFAULT_SAMPLE_INTERVAL),
            data: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether sampling is on — one relaxed load, asked once per VM thread
    /// run.
    pub fn enabled(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// Turn sampling on or off.  Already-recorded samples are kept.
    pub fn set_enabled(&self, on: bool) {
        self.on.store(on, Ordering::Relaxed);
    }

    /// The sampling interval in simulated cycles.
    pub fn interval(&self) -> u64 {
        self.interval.load(Ordering::Relaxed)
    }

    /// Change the sampling interval (simulated cycles between samples).
    ///
    /// # Panics
    /// A zero interval would sample every cycle forever.
    pub fn set_interval(&self, interval: u64) {
        assert!(interval > 0, "sampling interval must be positive");
        self.interval.store(interval, Ordering::Relaxed);
    }

    /// Discard every recorded sample.  The enabled flag and interval are
    /// untouched.
    pub fn clear(&self) {
        self.data.lock().expect("profiler samples poisoned").clear();
    }

    /// Fold a batch of raw samples in — one lock per VM thread run, not per
    /// sample.  Each key counts `n` samples.
    pub fn record_batch(&self, samples: impl IntoIterator<Item = (SampleKey, u64)>) {
        let mut data = self.data.lock().expect("profiler samples poisoned");
        for (key, n) in samples {
            *data.entry(key).or_insert(0) += n;
        }
    }

    /// Copy out everything sampled so far.
    pub fn snapshot(&self) -> Profile {
        Profile {
            interval: self.interval(),
            samples: self.data.lock().expect("profiler samples poisoned").clone(),
        }
    }

    /// [`Profiler::snapshot`] followed by [`Profiler::clear`] — the usual
    /// "one workload, one profile" driver step.
    pub fn take(&self) -> Profile {
        let p = self.snapshot();
        self.clear();
        p
    }
}

// --- interning ---------------------------------------------------------------

static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();

/// Intern a program symbol as a `&'static str` profile frame.  The set of
/// distinct symbols is bounded by the programs loaded into the process, so
/// the leak is bounded too; the same name interns to the same pointer.  In
/// debug builds the name is scanned against the recorder's registered
/// private sentinels first — runtime `World` bytes must never become a
/// frame, mirroring the [`crate::AttrValue`] rule for trace attributes.
pub fn intern(name: &str) -> &'static str {
    let set = INTERNED.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut set = set.lock().expect("profiler intern table poisoned");
    if let Some(&interned) = set.get(name) {
        return interned;
    }
    crate::recorder().debug_scan(name, "interned profile frame");
    let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(interned);
    interned
}

// --- profiles and exporters --------------------------------------------------

/// A consistent copy of the profiler's aggregated samples, with the
/// exporters on top.  Everything derives its order from the [`SampleKey`]
/// map, so every export is byte-deterministic.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Sampling interval (simulated cycles per sample) — one sample
    /// estimates `interval` cycles.
    pub interval: u64,
    pub samples: BTreeMap<SampleKey, u64>,
}

/// One procedure's row of the self/total table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcRow {
    pub name: &'static str,
    /// Samples whose innermost frame is this procedure.
    pub self_samples: u64,
    /// Samples with this procedure anywhere on the stack (counted once per
    /// sample).
    pub total_samples: u64,
}

/// One check site's row of the pending-check table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckRow {
    /// Code word of the bound check.
    pub check_word: u32,
    pub samples: u64,
    /// The enclosing block is a loop head.
    pub loop_head: bool,
}

impl CheckRow {
    /// Which eliminating pass (ROADMAP item 2b) this site is a candidate
    /// for: a check hot inside a loop head wants loop-invariant hoisting;
    /// anything else is a cross-block / available-check elimination
    /// candidate.
    pub fn candidate(&self) -> &'static str {
        if self.loop_head {
            "hoist"
        } else {
            "cross-block"
        }
    }
}

impl Profile {
    /// Total samples across every bucket.
    pub fn total_samples(&self) -> u64 {
        self.samples.values().sum()
    }

    /// Samples that landed on a pending bound check.
    pub fn check_samples(&self) -> u64 {
        self.samples
            .iter()
            .filter(|(k, _)| k.check_word != NO_CHECK)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Estimated simulated cycles represented by the profile.
    pub fn estimated_cycles(&self) -> u64 {
        self.total_samples() * self.interval
    }

    /// The collapsed-stack ("folded") export, one line per bucket:
    ///
    /// ```text
    /// tid0;main;inner;block_0x2a;check_0x30 17
    /// ```
    ///
    /// Frames are `;`-separated, the count follows a space — the format
    /// `flamegraph.pl` and every folded-stack consumer read directly.  The
    /// thread is the root frame; the sampled block (and, when present, the
    /// pending check site) are synthetic leaf frames.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (k, n) in &self.samples {
            out.push_str(&format!("tid{}", k.tid));
            for frame in &k.stack {
                out.push(';');
                out.push_str(frame);
            }
            out.push_str(&format!(";block_{:#x}", k.block_word));
            if k.check_word != NO_CHECK {
                out.push_str(&format!(";check_{:#x}", k.check_word));
            }
            out.push_str(&format!(" {n}\n"));
        }
        out
    }

    /// Per-procedure self/total sample counts, hottest self first (ties
    /// break on the name, so the order is total).
    pub fn proc_rows(&self) -> Vec<ProcRow> {
        let mut self_of: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut total_of: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (k, n) in &self.samples {
            if let Some(leaf) = k.stack.last() {
                *self_of.entry(leaf).or_insert(0) += n;
            }
            let mut seen: Vec<&'static str> = Vec::new();
            for frame in &k.stack {
                if !seen.contains(frame) {
                    seen.push(frame);
                    *total_of.entry(frame).or_insert(0) += n;
                }
            }
        }
        let mut rows: Vec<ProcRow> = total_of
            .iter()
            .map(|(&name, &total)| ProcRow {
                name,
                self_samples: self_of.get(name).copied().unwrap_or(0),
                total_samples: total,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.self_samples
                .cmp(&a.self_samples)
                .then_with(|| a.name.cmp(b.name))
        });
        rows
    }

    /// Per-check-site sample counts, hottest first (ties break on the
    /// word), with the eliminating-pass candidate column — the ranked
    /// worklist for ROADMAP item 2b.
    pub fn check_rows(&self) -> Vec<CheckRow> {
        let mut by_site: BTreeMap<u32, (u64, bool)> = BTreeMap::new();
        for (k, n) in &self.samples {
            if k.check_word == NO_CHECK {
                continue;
            }
            let entry = by_site.entry(k.check_word).or_insert((0, false));
            entry.0 += n;
            entry.1 |= k.loop_head;
        }
        let mut rows: Vec<CheckRow> = by_site
            .iter()
            .map(|(&check_word, &(samples, loop_head))| CheckRow {
                check_word,
                samples,
                loop_head,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.samples
                .cmp(&a.samples)
                .then_with(|| a.check_word.cmp(&b.check_word))
        });
        rows
    }

    /// Render the self/total table.
    pub fn proc_table(&self) -> String {
        let total = self.total_samples().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24}{:>10}{:>10}{:>8}{:>16}\n",
            "procedure", "self", "total", "self%", "~self cycles"
        ));
        for r in self.proc_rows() {
            out.push_str(&format!(
                "{:<24}{:>10}{:>10}{:>7.1}%{:>16}\n",
                r.name,
                r.self_samples,
                r.total_samples,
                r.self_samples as f64 / total as f64 * 100.0,
                r.self_samples * self.interval,
            ));
        }
        out
    }

    /// Render the check-site table.
    pub fn check_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14}{:>10}{:>12}  candidate pass\n",
            "check site", "samples", "~cycles"
        ));
        for r in self.check_rows() {
            out.push_str(&format!(
                "{:<14}{:>10}{:>12}  {}\n",
                format!("check_{:#x}", r.check_word),
                r.samples,
                r.samples * self.interval,
                r.candidate(),
            ));
        }
        out
    }

    /// Diff against another profile of the *same workload* under a
    /// different configuration: where did the cycles go?
    pub fn diff(&self, other: &Profile, label_a: &str, label_b: &str) -> ProfileDiff {
        let mut sites: BTreeMap<u32, (u64, u64, bool)> = BTreeMap::new();
        for r in self.check_rows() {
            let e = sites.entry(r.check_word).or_insert((0, 0, false));
            e.0 = r.samples;
            e.2 |= r.loop_head;
        }
        for r in other.check_rows() {
            let e = sites.entry(r.check_word).or_insert((0, 0, false));
            e.1 = r.samples;
            e.2 |= r.loop_head;
        }
        let mut procs: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for r in self.proc_rows() {
            procs.entry(r.name).or_insert((0, 0)).0 = r.self_samples;
        }
        for r in other.proc_rows() {
            procs.entry(r.name).or_insert((0, 0)).1 = r.self_samples;
        }
        ProfileDiff {
            label_a: label_a.to_owned(),
            label_b: label_b.to_owned(),
            interval: self.interval,
            total_a: self.total_samples(),
            total_b: other.total_samples(),
            check_a: self.check_samples(),
            check_b: other.check_samples(),
            sites: sites
                .into_iter()
                .map(|(check_word, (a, b, loop_head))| SiteDiff {
                    check_word,
                    samples_a: a,
                    samples_b: b,
                    loop_head,
                })
                .collect(),
            procs: procs
                .into_iter()
                .map(|(name, (a, b))| ProcDiff {
                    name,
                    self_a: a,
                    self_b: b,
                })
                .collect(),
        }
    }
}

/// One check site's side-by-side sample counts in a [`ProfileDiff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteDiff {
    pub check_word: u32,
    pub samples_a: u64,
    pub samples_b: u64,
    pub loop_head: bool,
}

/// One procedure's side-by-side self-sample counts in a [`ProfileDiff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDiff {
    pub name: &'static str,
    pub self_a: u64,
    pub self_b: u64,
}

/// The differential profile: the same workload under two configurations
/// (e.g. the full pass pipeline vs PR-1), reporting where the eliminated
/// checks' cycles went.
#[derive(Debug, Clone)]
pub struct ProfileDiff {
    pub label_a: String,
    pub label_b: String,
    pub interval: u64,
    pub total_a: u64,
    pub total_b: u64,
    pub check_a: u64,
    pub check_b: u64,
    /// Per-check-site counts, keyed ascending by word.
    pub sites: Vec<SiteDiff>,
    /// Per-procedure self counts, keyed ascending by name.
    pub procs: Vec<ProcDiff>,
}

impl ProfileDiff {
    /// Render as an aligned text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== profile diff — {} vs {} ({} cycles/sample)\n",
            self.label_a, self.label_b, self.interval
        ));
        out.push_str(&format!(
            "total samples: {} vs {} ({:+})\n",
            self.total_a,
            self.total_b,
            self.total_b as i64 - self.total_a as i64
        ));
        out.push_str(&format!(
            "check samples: {} vs {} ({:+})\n",
            self.check_a,
            self.check_b,
            self.check_b as i64 - self.check_a as i64
        ));
        let mut sites = self.sites.clone();
        sites.sort_by(|x, y| {
            let dx = x.samples_a as i64 - x.samples_b as i64;
            let dy = y.samples_a as i64 - y.samples_b as i64;
            dy.cmp(&dx).then_with(|| x.check_word.cmp(&y.check_word))
        });
        for s in &sites {
            out.push_str(&format!(
                "  check_{:<10}{:>8}{:>8}  ({:+})  [{}]\n",
                format!("{:#x}", s.check_word),
                s.samples_a,
                s.samples_b,
                s.samples_b as i64 - s.samples_a as i64,
                if s.loop_head { "hoist" } else { "cross-block" },
            ));
        }
        let mut procs = self.procs.clone();
        procs.sort_by(|x, y| {
            let dx = x.self_b as i64 - x.self_a as i64;
            let dy = y.self_b as i64 - y.self_a as i64;
            dy.cmp(&dx).then_with(|| x.name.cmp(y.name))
        });
        for p in &procs {
            out.push_str(&format!(
                "  {:<16}{:>8}{:>8}  ({:+})\n",
                p.name,
                p.self_a,
                p.self_b,
                p.self_b as i64 - p.self_a as i64,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(stack: &[&'static str], block: u32, check: u32, loop_head: bool) -> SampleKey {
        SampleKey {
            tid: 0,
            stack: stack.to_vec(),
            block_word: block,
            check_word: check,
            loop_head,
        }
    }

    #[test]
    fn intern_dedups_to_one_pointer() {
        let a = intern("some_function");
        let b = intern(&String::from("some_function"));
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn disabled_profiler_is_off_and_empty() {
        let p = Profiler::new();
        assert!(!p.enabled());
        assert_eq!(p.snapshot().total_samples(), 0);
    }

    #[test]
    fn batches_aggregate_and_export_deterministically() {
        let p = Profiler::new();
        p.set_interval(100);
        let k1 = key(&["main", "inner"], 0x10, 0x14, true);
        let k2 = key(&["main"], 0x2, NO_CHECK, false);
        p.record_batch([(k1.clone(), 3), (k2.clone(), 2)]);
        p.record_batch([(k1.clone(), 1)]);
        let prof = p.take();
        assert_eq!(prof.total_samples(), 6);
        assert_eq!(prof.check_samples(), 4);
        assert_eq!(prof.estimated_cycles(), 600);
        let folded = prof.folded();
        assert_eq!(
            folded,
            "tid0;main;block_0x2 2\ntid0;main;inner;block_0x10;check_0x14 4\n"
        );
        let procs = prof.proc_rows();
        assert_eq!(procs[0].name, "inner");
        assert_eq!(procs[0].self_samples, 4);
        assert_eq!(procs[0].total_samples, 4);
        let main = procs.iter().find(|r| r.name == "main").unwrap();
        assert_eq!(main.self_samples, 2);
        assert_eq!(main.total_samples, 6);
        let checks = prof.check_rows();
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].check_word, 0x14);
        assert_eq!(checks[0].samples, 4);
        assert_eq!(checks[0].candidate(), "hoist");
        // Taking drained the buckets.
        assert_eq!(p.snapshot().total_samples(), 0);
    }

    #[test]
    fn recursive_stacks_count_total_once_per_sample() {
        let p = Profiler::new();
        p.record_batch([(key(&["f", "f", "f"], 0, NO_CHECK, false), 5)]);
        let rows = p.take().proc_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].total_samples, 5, "not once per frame");
        assert_eq!(rows[0].self_samples, 5);
    }

    #[test]
    fn diff_reports_site_and_proc_deltas() {
        let a = Profiler::new();
        a.record_batch([
            (key(&["main", "hot"], 0x10, 0x14, true), 10),
            (key(&["main"], 0x2, NO_CHECK, false), 4),
        ]);
        let a = a.take();
        let b = Profiler::new();
        b.record_batch([(key(&["main"], 0x2, NO_CHECK, false), 5)]);
        let b = b.take();
        let d = a.diff(&b, "pr1", "full");
        assert_eq!((d.total_a, d.total_b), (14, 5));
        assert_eq!((d.check_a, d.check_b), (10, 0));
        assert_eq!(d.sites.len(), 1);
        assert_eq!(d.sites[0].samples_a, 10);
        assert_eq!(d.sites[0].samples_b, 0);
        assert!(d.sites[0].loop_head);
        let rendered = d.render();
        assert!(rendered.contains("pr1 vs full"));
        assert!(rendered.contains("check_0x14"));
        assert!(rendered.contains("[hoist]"));
    }

    #[test]
    fn candidate_column_distinguishes_loop_heads() {
        let hoist = CheckRow {
            check_word: 1,
            samples: 1,
            loop_head: true,
        };
        let flat = CheckRow {
            check_word: 2,
            samples: 1,
            loop_head: false,
        };
        assert_eq!(hoist.candidate(), "hoist");
        assert_eq!(flat.candidate(), "cross-block");
    }
}
