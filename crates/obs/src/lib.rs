//! # confllvm-obs
//!
//! Leak-safe structured observability for the ConfLLVM reproduction: one
//! recorder every layer (compiler pass managers, ConfVerify, the VM, the
//! serving runtime) records into, with Chrome-trace and metrics-JSON
//! exporters on top.  See `crates/obs/README.md` for the full model and
//! the Perfetto how-to.
//!
//! The three design rules, in order of importance:
//!
//! 1. **No leaks by construction.**  Attribute values are typed
//!    ([`AttrValue`]) and only numbers, booleans and `'static` string
//!    literals convert — runtime bytes (private `World` state) cannot reach
//!    a trace at compile time, and debug builds additionally scan every
//!    recorded event against registered private sentinels
//!    ([`Recorder::add_private_sentinel`]).
//! 2. **Disabled means free.**  A disabled recorder costs one relaxed
//!    atomic load per span and records nothing; instrumentation never
//!    touches simulated state either way, so traced and untraced runs have
//!    byte-identical simulated observables and cycle counts.
//! 3. **Simulated cycles ≠ host time.**  Spans carry both, separately
//!    labelled, mirroring the workspace-wide rule that assertions go on
//!    deterministic simulated numbers while host time is only reported.

mod attr;
mod export;
mod hist;
mod json;
pub mod prof;
mod recorder;
pub mod series;

pub use attr::AttrValue;
pub use export::{
    chrome_trace_json, metrics_json, summary_table, validate_chrome_trace, TraceCheck,
};
pub use hist::{exact_percentile, exact_percentile_milli, Histogram};
pub use json::{parse_json, Json};
pub use prof::{profiler, Profile, ProfileDiff, Profiler, SampleKey};
pub use recorder::{recorder, Event, EventKind, Recorder, Span, ThreadEvents, TraceSnapshot};
pub use series::{SloMonitor, SloReport, SloRules, WindowSeries, WindowStat};

/// The span categories of the four instrumented layers, in the order the
/// acceptance gate checks them: compiler (IR + machine pass managers),
/// verifier (ConfVerify driver + cache), vm (execution, snapshot/restore),
/// server (request path + registry lifecycle).
pub const LAYERS: [&str; 4] = ["compiler", "verifier", "vm", "server"];
