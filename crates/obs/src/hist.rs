//! Fixed-bucket histograms and the shared exact-percentile helper.
//!
//! The histogram has one bucket per power of two (64 buckets plus a zero
//! bucket), so recording is a `leading_zeros` and an increment — cheap
//! enough for per-request hot paths — and merging across threads is a plain
//! element-wise add.  Percentiles read from the buckets are upper-bound
//! estimates (within 2× of the true value); call sites that keep exact
//! samples (e.g. the server's `StreamMetrics`) use [`exact_percentile`]
//! instead, the one shared definition of the nearest-rank percentile.

/// A fixed-bucket log2 histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[0]` counts zeros; `buckets[i]` counts values in
    /// `[2^(i-1), 2^i)`.
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile estimated from the buckets: the upper bound
    /// of the bucket the rank falls into, clamped to the recorded maximum.
    /// Within 2× of the exact nearest-rank value by construction.
    pub fn percentile(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (pct as u64 * self.count).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket 64 holds [2^63, u64::MAX]; its upper bound is
                // u64::MAX itself, which `1 << 64` cannot express.
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max).max(self.min());
            }
        }
        self.max
    }
}

/// The nearest-rank percentile of an unsorted sample set — the exact
/// definition every layer of the workspace quotes (the server's
/// `StreamMetrics` percentiles are this function over its per-request
/// samples).
pub fn exact_percentile(samples: &[u64], pct: u32) -> u64 {
    exact_percentile_milli(samples, pct * 10)
}

/// [`exact_percentile`] with per-mille resolution: `per_mille` is the
/// percentile times ten, so 999 is p99.9 — the tail the serving layer's
/// overload experiments quote (a p99 hides a 1-in-1000 stall; at 10^4
/// requests per sweep point p99.9 is still averaged over ten samples).
pub fn exact_percentile_milli(samples: &[u64], per_mille: u32) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (per_mille as usize * sorted.len()).div_ceil(1000);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
    }

    #[test]
    fn percentile_upper_bounds_within_2x() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).collect();
        for &v in &samples {
            h.record(v);
        }
        for pct in [50, 90, 99, 100] {
            let exact = exact_percentile(&samples, pct);
            let est = h.percentile(pct);
            assert!(est >= exact, "p{pct}: {est} < exact {exact}");
            assert!(est <= exact * 2, "p{pct}: {est} > 2x exact {exact}");
        }
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn per_mille_percentile_resolves_the_one_in_a_thousand_tail() {
        let samples: Vec<u64> = (1..=1000).collect();
        assert_eq!(exact_percentile_milli(&samples, 999), 999);
        assert_eq!(exact_percentile_milli(&samples, 1000), 1000);
        assert_eq!(exact_percentile_milli(&samples, 500), 500);
        // p99 and p99.9 agree with the percent-resolution definition.
        assert_eq!(
            exact_percentile_milli(&samples, 990),
            exact_percentile(&samples, 99)
        );
        assert_eq!(exact_percentile_milli(&[], 999), 0);
    }

    #[test]
    fn exact_percentile_matches_the_streammetrics_definition() {
        let samples = [100, 200, 300, 400, 1000];
        assert_eq!(exact_percentile(&samples, 50), 300);
        assert_eq!(exact_percentile(&samples, 99), 1000);
        assert_eq!(exact_percentile(&samples, 100), 1000);
        assert_eq!(exact_percentile(&[], 50), 0);
    }

    #[test]
    fn percentile_edge_cases_stay_in_range() {
        // Empty input: every rank is 0, at both resolutions.
        for p in [0, 1, 500, 999, 1000] {
            assert_eq!(exact_percentile_milli(&[], p), 0);
        }
        // Single element: every percentile is that element.
        for p in [0, 1, 500, 990, 999, 1000] {
            assert_eq!(exact_percentile_milli(&[42], p), 42);
        }
        // All-equal samples: rank selection cannot matter.
        let same = [7u64; 100];
        for p in [0, 1, 500, 990, 999, 1000] {
            assert_eq!(exact_percentile_milli(&same, p), 7);
        }
        // u64::MAX samples must survive sorting and indexing unclamped.
        let extremes = [0, 1, u64::MAX, u64::MAX];
        assert_eq!(exact_percentile_milli(&extremes, 1000), u64::MAX);
        assert_eq!(exact_percentile_milli(&extremes, 500), 1);
        assert_eq!(exact_percentile_milli(&[u64::MAX], 999), u64::MAX);
        // per_mille 0 floors at the smallest sample, not out of bounds.
        assert_eq!(exact_percentile_milli(&extremes, 0), 0);
        // Out-of-range per_mille clamps to the maximum rather than panicking.
        assert_eq!(exact_percentile_milli(&extremes, 2000), u64::MAX);
        // The percent wrapper agrees on the same edges.
        assert_eq!(exact_percentile(&[], 99), 0);
        assert_eq!(exact_percentile(&[42], 100), 42);
        assert_eq!(exact_percentile(&[u64::MAX], 50), u64::MAX);
    }

    #[test]
    fn histogram_handles_u64_max_without_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1);
        // sum saturates rather than wrapping; min/max stay exact.
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), u64::MAX);
        // The top bucket's upper bound clamps to the recorded maximum.
        assert_eq!(h.percentile(100), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(99), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
