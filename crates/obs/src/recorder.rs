//! The thread-safe trace recorder: spans, instant events, counters,
//! histograms, per-thread ring buffers, and the run-time half of the
//! redaction boundary.
//!
//! ## Cost model
//!
//! A **disabled** recorder (the default) must cost nothing observable:
//! [`Recorder::span`] is one relaxed atomic load returning an inert guard
//! whose `attr`/`cycles`/`Drop` are no-ops — no clock read, no allocation,
//! no lock.  Nothing in the recorder ever touches simulated state
//! (`ExecStats`, worlds, memory), so tracing on vs off yields byte-identical
//! simulated observables and cycle counts; the integration tests assert
//! this end to end.
//!
//! ## Concurrency
//!
//! Each thread records into its own fixed-capacity ring buffer (cached
//! through a thread-local, registered once in a shared list), so the hot
//! path takes an uncontended per-thread lock; when the ring is full the
//! oldest event is dropped and counted, never blocking the recording
//! thread.  Counters and histograms are keyed by `'static` names in shared
//! maps — they are updated far less often than spans.
//!
//! ## Redaction
//!
//! Attribute values are [`AttrValue`] — runtime byte payloads are
//! unrepresentable (see [`crate::attr`]).  As a second line of defense,
//! tests register the private bytes they plant in `World`s via
//! [`Recorder::add_private_sentinel`]; in debug builds every recorded
//! event's name, category and text attributes are scanned against the
//! registered sentinels and a match panics at the record site, naming the
//! offending span rather than letting the secret reach an export.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::attr::AttrValue;
use crate::hist::Histogram;

/// Per-thread ring capacity.  A full quick evaluation section records a few
/// thousand events per thread; long full-scale runs wrap and count drops.
const RING_CAPACITY: usize = 1 << 16;

/// How an [`Event`] renders in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration slice (`ph: "X"`).
    Complete,
    /// A point-in-time marker (`ph: "i"`), e.g. a registry state change.
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    /// Layer category (`"compiler"`, `"verifier"`, `"vm"`, `"server"`).
    pub cat: &'static str,
    pub name: &'static str,
    /// Host nanoseconds since the recorder's epoch.
    pub start_nanos: u64,
    /// Host duration in nanoseconds (0 for instants).
    pub dur_nanos: u64,
    /// Simulated cycles attributed to the span (0 when not applicable) —
    /// kept separate from host time throughout, like everywhere else in the
    /// workspace.
    pub cycles: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

struct ThreadBuf {
    tid: u64,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

/// A live span (or pending instant event).  Created by [`Recorder::span`] /
/// [`Recorder::instant`]; records itself when dropped.  When the recorder
/// is disabled the guard is inert and every method is a no-op.
pub struct Span<'r> {
    rec: Option<&'r Recorder>,
    kind: EventKind,
    cat: &'static str,
    name: &'static str,
    start_nanos: u64,
    cycles: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span<'_> {
    /// Whether this guard will record anything — lets call sites skip
    /// attribute computation entirely when tracing is off.
    pub fn active(&self) -> bool {
        self.rec.is_some()
    }

    /// Attach a typed attribute.  The value must be an [`AttrValue`] scalar;
    /// runtime strings and byte buffers do not convert (by design — see
    /// [`AttrValue`]).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.rec.is_some() {
            self.attrs.push((key, value.into()));
        }
    }

    /// Attribute simulated cycles to the span.
    pub fn cycles(&mut self, cycles: u64) {
        if self.rec.is_some() {
            self.cycles = cycles;
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(rec) = self.rec else { return };
        let dur_nanos = match self.kind {
            EventKind::Complete => rec.now_nanos().saturating_sub(self.start_nanos),
            EventKind::Instant => 0,
        };
        rec.push(Event {
            kind: self.kind,
            cat: self.cat,
            name: self.name,
            start_nanos: self.start_nanos,
            dur_nanos,
            cycles: self.cycles,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// One thread's share of a [`TraceSnapshot`].
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    /// Recorder-assigned thread number (stable per thread, dense from 1).
    pub tid: u64,
    /// Events in record order.
    pub events: Vec<Event>,
    /// Events dropped because the ring was full.
    pub dropped: u64,
}

/// A consistent copy of everything recorded so far, ready for export.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    pub threads: Vec<ThreadEvents>,
    pub counters: BTreeMap<&'static str, u64>,
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl TraceSnapshot {
    /// Total events across all threads.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total events dropped to ring wrap-around across all threads.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Iterate every event of every thread.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.threads.iter().flat_map(|t| t.events.iter())
    }
}

/// The recorder.  Usually used through the process-wide [`recorder`];
/// tests may build private instances.
pub struct Recorder {
    /// Process-unique id; keys the thread-local buffer cache so distinct
    /// recorder instances (tests) never share ring buffers even if one is
    /// dropped and another reuses its address.
    id: u64,
    on: AtomicBool,
    epoch: OnceLock<Instant>,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    next_tid: AtomicU64,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    hists: Mutex<BTreeMap<&'static str, Histogram>>,
    sentinels: Mutex<Vec<Vec<u8>>>,
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);
static GLOBAL: OnceLock<Recorder> = OnceLock::new();

thread_local! {
    /// (recorder id → this thread's buffer) cache; tiny (one entry in
    /// production, a few in tests).
    static BUFS: RefCell<Vec<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide recorder every instrumented layer records into.
/// Disabled until someone (the `repro --trace` driver, a test) enables it.
pub fn recorder() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh, disabled recorder.
    pub fn new() -> Self {
        Recorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            on: AtomicBool::new(false),
            epoch: OnceLock::new(),
            threads: Mutex::new(Vec::new()),
            next_tid: AtomicU64::new(1),
            counters: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            sentinels: Mutex::new(Vec::new()),
        }
    }

    /// Whether recording is on.  One relaxed load — cheap enough for every
    /// hot path to ask directly.
    pub fn enabled(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// Turn recording on or off.  Already-recorded events are kept.
    pub fn set_enabled(&self, on: bool) {
        if on {
            // Pin the epoch before the first span so timestamps are
            // monotone from here on.
            let _ = self.epoch.get_or_init(Instant::now);
        }
        self.on.store(on, Ordering::Relaxed);
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Open a duration span in layer `cat`.  Inert (and free) when
    /// disabled.
    pub fn span(&self, cat: &'static str, name: &'static str) -> Span<'_> {
        if !self.enabled() {
            return Span {
                rec: None,
                kind: EventKind::Complete,
                cat,
                name,
                start_nanos: 0,
                cycles: 0,
                attrs: Vec::new(),
            };
        }
        Span {
            rec: Some(self),
            kind: EventKind::Complete,
            cat,
            name,
            start_nanos: self.now_nanos(),
            cycles: 0,
            attrs: Vec::new(),
        }
    }

    /// Open an instant event (a point marker, e.g. a lifecycle transition).
    /// Records when the returned guard drops.
    pub fn instant(&self, cat: &'static str, name: &'static str) -> Span<'_> {
        let mut s = self.span(cat, name);
        s.kind = EventKind::Instant;
        s
    }

    /// Add `delta` to the named monotonic counter.  No-op when disabled.
    pub fn count(&self, name: &'static str, delta: u64) {
        if !self.enabled() {
            return;
        }
        self.assert_clean_str(name, "counter name");
        *self
            .counters
            .lock()
            .expect("obs counters poisoned")
            .entry(name)
            .or_insert(0) += delta;
    }

    /// Record one sample into the named histogram.  No-op when disabled.
    pub fn record_hist(&self, name: &'static str, value: u64) {
        if !self.enabled() {
            return;
        }
        self.assert_clean_str(name, "histogram name");
        self.hists
            .lock()
            .expect("obs histograms poisoned")
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Register private bytes that must never appear in any recorded event
    /// — the run-time half of the redaction boundary.  In debug builds
    /// every subsequently recorded name/category/text attribute is scanned
    /// for the registered byte patterns and a match panics at the record
    /// site.
    pub fn add_private_sentinel(&self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.sentinels
            .lock()
            .expect("obs sentinels poisoned")
            .push(bytes.to_vec());
    }

    /// Drop all registered sentinels (tests clean up after themselves).
    pub fn clear_private_sentinels(&self) {
        self.sentinels
            .lock()
            .expect("obs sentinels poisoned")
            .clear();
    }

    /// Discard every recorded event, counter and histogram (sentinels are
    /// kept).  The enabled flag is untouched.
    pub fn clear(&self) {
        for buf in self.threads.lock().expect("obs threads poisoned").iter() {
            buf.events.lock().expect("obs ring poisoned").clear();
            buf.dropped.store(0, Ordering::Relaxed);
        }
        self.counters.lock().expect("obs counters poisoned").clear();
        self.hists.lock().expect("obs histograms poisoned").clear();
    }

    /// Copy out everything recorded so far, per thread plus the shared
    /// counters and histograms.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut threads: Vec<ThreadEvents> = self
            .threads
            .lock()
            .expect("obs threads poisoned")
            .iter()
            .map(|buf| ThreadEvents {
                tid: buf.tid,
                events: buf
                    .events
                    .lock()
                    .expect("obs ring poisoned")
                    .iter()
                    .cloned()
                    .collect(),
                dropped: buf.dropped.load(Ordering::Relaxed),
            })
            .collect();
        threads.sort_by_key(|t| t.tid);
        TraceSnapshot {
            threads,
            counters: self.counters.lock().expect("obs counters poisoned").clone(),
            histograms: self.hists.lock().expect("obs histograms poisoned").clone(),
        }
    }

    fn buf(&self) -> Arc<ThreadBuf> {
        BUFS.with(|cell| {
            let mut cached = cell.borrow_mut();
            if let Some((_, buf)) = cached.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(buf);
            }
            let buf = Arc::new(ThreadBuf {
                tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(VecDeque::with_capacity(64)),
                dropped: AtomicU64::new(0),
            });
            self.threads
                .lock()
                .expect("obs threads poisoned")
                .push(Arc::clone(&buf));
            cached.push((self.id, Arc::clone(&buf)));
            buf
        })
    }

    fn push(&self, event: Event) {
        self.assert_no_sentinel(&event);
        let buf = self.buf();
        let mut ring = buf.events.lock().expect("obs ring poisoned");
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
            buf.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    fn assert_no_sentinel(&self, event: &Event) {
        if cfg!(debug_assertions) {
            self.assert_clean_str(event.name, "event name");
            self.assert_clean_str(event.cat, "event category");
            for (key, value) in &event.attrs {
                self.assert_clean_str(key, "attribute key");
                if let AttrValue::Text(text) = value {
                    self.assert_clean_str(text, "attribute value");
                }
            }
        }
    }

    /// Scan a string against the registered private sentinels and panic on
    /// a match (debug builds only) — for sibling subsystems that admit
    /// strings through their own gates (e.g. the profiler's frame interner)
    /// and want the same record-site check the recorder applies.
    pub fn debug_scan(&self, s: &str, what: &str) {
        self.assert_clean_str(s, what);
    }

    fn assert_clean_str(&self, s: &str, what: &str) {
        if !cfg!(debug_assertions) {
            return;
        }
        let sentinels = self.sentinels.lock().expect("obs sentinels poisoned");
        for sentinel in sentinels.iter() {
            assert!(
                !contains_subslice(s.as_bytes(), sentinel),
                "private sentinel leaked into a recorded {what}: {s:?}"
            );
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .field(
                "threads",
                &self.threads.lock().expect("obs threads poisoned").len(),
            )
            .finish_non_exhaustive()
    }
}

fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::new();
        {
            let mut s = rec.span("vm", "vm.run");
            assert!(!s.active());
            s.attr("cycles", 10u64);
            s.cycles(10);
        }
        rec.count("hits", 3);
        rec.record_hist("lat", 5);
        let snap = rec.snapshot();
        assert_eq!(snap.event_count(), 0);
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn spans_counters_and_histograms_round_trip() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        {
            let mut s = rec.span("verifier", "verify.proc");
            s.attr("cache_hit", true);
            s.cycles(42);
        }
        {
            let mut i = rec.instant("server", "registry.transition");
            i.attr("state", "warm");
        }
        rec.count("verify.cache.hits", 2);
        rec.count("verify.cache.hits", 3);
        rec.record_hist("server.request.cycles", 100);
        let snap = rec.snapshot();
        assert_eq!(snap.event_count(), 2);
        let span = snap.events().find(|e| e.name == "verify.proc").unwrap();
        assert_eq!(span.kind, EventKind::Complete);
        assert_eq!(span.cycles, 42);
        assert_eq!(span.attrs, vec![("cache_hit", AttrValue::Bool(true))]);
        let inst = snap
            .events()
            .find(|e| e.name == "registry.transition")
            .unwrap();
        assert_eq!(inst.kind, EventKind::Instant);
        assert_eq!(inst.dur_nanos, 0);
        assert_eq!(snap.counters["verify.cache.hits"], 5);
        assert_eq!(snap.histograms["server.request.cycles"].count(), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        for _ in 0..(RING_CAPACITY + 10) {
            rec.span("vm", "tick");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.event_count(), RING_CAPACITY);
        assert_eq!(snap.dropped(), 10);
    }

    #[test]
    fn threads_get_distinct_buffers() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        rec.span("vm", "main-thread");
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    rec.span("vm", "worker");
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.threads.len(), 4);
        assert_eq!(snap.event_count(), 4);
        let tids: Vec<u64> = snap.threads.iter().map(|t| t.tid).collect();
        assert_eq!(tids, [1, 2, 3, 4], "dense stable tids");
    }

    #[test]
    fn clear_resets_events_but_keeps_the_enable_state() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        rec.span("vm", "tick");
        rec.count("c", 1);
        rec.clear();
        assert!(rec.enabled());
        let snap = rec.snapshot();
        assert_eq!(snap.event_count(), 0);
        assert!(snap.counters.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "private sentinel leaked")]
    fn sentinel_in_a_text_attribute_panics_at_the_record_site() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        rec.add_private_sentinel(b"HUNTER2");
        let mut s = rec.span("server", "request");
        // A *static* string carrying the planted secret — the only way text
        // can reach an attribute, and exactly what the scan must catch.
        s.attr("body", "password=HUNTER2");
    }

    #[test]
    fn the_global_recorder_is_one_instance() {
        assert!(std::ptr::eq(recorder(), recorder()));
    }
}
