//! A minimal dependency-free JSON reader, just big enough to *validate*
//! what the exporters emit (and what CI feeds back through
//! `repro --check-trace`).  Full grammar — objects, arrays, strings with
//! escapes, numbers, booleans, null — no serde, no spans, no streaming.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object member lookup (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.get(key)
    }
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through byte-wise intact:
                // collect the full code point.
                let len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + len)
                    .ok_or("truncated UTF-8".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected `,` or `]`, found {other:?}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected `,` or `}}`, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_value_grammar() {
        let doc = r#"{"a": [1, -2.5, true, null, "x\"yA"], "b": {}}"#;
        let v = parse_json(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].as_num(), Some(-2.5));
        assert_eq!(a[2], Json::Bool(true));
        assert_eq!(a[3], Json::Null);
        assert_eq!(a[4].as_str(), Some("x\"yA"));
        assert!(v.get("b").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "1 2", "\"open", "tru"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn round_trips_unicode() {
        let v = parse_json("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }
}
