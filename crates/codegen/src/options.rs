//! Code-generation options: which scheme, which instrumentation, which
//! machine-level optimisation pipeline.
//!
//! Since the pass-manager refactor the MPX check optimisations of
//! Section 5.1 are no longer independent booleans but named machine passes
//! (see [`crate::mpass`]) listed in a textual pipeline, mirroring the IR
//! pipelines of `confllvm_ir::pm`.  The paper's evaluation configurations
//! (Base, OurBare, OurCFI, OurMPX, OurSeg, ...) in `confllvm-core` each name
//! their pipeline:
//!
//! * [`PIPELINE_MPX_FULL`] — everything, including the cross-block
//!   redundant-check elimination and loop-invariant check hoisting,
//! * [`PIPELINE_MPX_PR1`] — the three original Section 5.1 optimisations
//!   only (displacement folding, per-block check coalescing, stack-check
//!   elision), kept as the ablation baseline,
//! * the empty pipeline — fully unoptimised instrumentation.
//!
//! [`MpxOptimizations`] survives as a flag façade for callers and tests that
//! want to toggle the three classic optimisations without writing pipeline
//! strings; [`MpxOptimizations::pipeline`] converts it.

use confllvm_machine::Scheme;

/// The full machine pipeline: the three Section 5.1 optimisations plus the
/// dataflow-driven cross-block elimination and loop-invariant hoisting.
pub const PIPELINE_MPX_FULL: &str = "mpx-skip-stack-checks,mpx-fold-displacements,\
                                     mpx-coalesce-checks,mpx-hoist-checks,mpx-cross-block-elim";

/// The pre-refactor pipeline: only the three optimisations the original
/// reproduction implemented (no cross-block elimination, no hoisting).
pub const PIPELINE_MPX_PR1: &str =
    "mpx-skip-stack-checks,mpx-fold-displacements,mpx-coalesce-checks";

/// The MPX-specific optimisations of Section 5.1, as independent flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpxOptimizations {
    /// Fold small constant displacements into the memory operand and check
    /// only the base register, relying on the 1 MiB guard areas around the
    /// regions (`mpx-fold-displacements`).
    pub fold_displacements: bool,
    /// Skip a check if the same address value was already checked against the
    /// same region earlier in the basic block with no intervening call
    /// (`mpx-coalesce-checks`).
    pub coalesce_checks: bool,
    /// Do not check rsp-relative (stack) accesses at all: the inlined
    /// `_chkstk` keeps rsp inside the stack area, so rsp (and rsp+OFFSET) are
    /// always in bounds (`mpx-skip-stack-checks`).
    pub skip_stack_checks: bool,
}

impl Default for MpxOptimizations {
    fn default() -> Self {
        MpxOptimizations {
            fold_displacements: true,
            coalesce_checks: true,
            skip_stack_checks: true,
        }
    }
}

impl MpxOptimizations {
    /// All optimisations disabled — the ablation baseline.
    pub fn none() -> Self {
        MpxOptimizations {
            fold_displacements: false,
            coalesce_checks: false,
            skip_stack_checks: false,
        }
    }

    /// The machine-pipeline description equivalent to these flags (the
    /// classic trio only; the full pipeline is [`PIPELINE_MPX_FULL`]).
    pub fn pipeline(&self) -> String {
        let mut names = Vec::new();
        if self.skip_stack_checks {
            names.push("mpx-skip-stack-checks");
        }
        if self.fold_displacements {
            names.push("mpx-fold-displacements");
        }
        if self.coalesce_checks {
            names.push("mpx-coalesce-checks");
        }
        names.join(",")
    }
}

/// Full code-generation configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Memory-partitioning scheme used for bounds enforcement.
    pub scheme: Scheme,
    /// Emit taint-aware CFI (magic sequences + expanded returns and indirect
    /// calls).
    pub cfi: bool,
    /// Keep public and private data on separate, lock-step stacks.
    pub split_stacks: bool,
    /// Separate T's memory from U's and switch stacks on every call into T.
    pub separate_trusted_memory: bool,
    /// Emit the inlined `_chkstk` stack-bounds enforcement in prologues.
    pub emit_chkstk: bool,
    /// Machine-level optimisation pipeline (comma-separated pass names, see
    /// [`crate::mpass`]).  Empty = no machine optimisations.
    pub passes: String,
    /// Deterministic seed for the magic-prefix search (None = from entropy).
    pub prefix_seed: Option<u64>,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            scheme: Scheme::Segment,
            cfi: true,
            split_stacks: true,
            separate_trusted_memory: true,
            emit_chkstk: true,
            passes: PIPELINE_MPX_FULL.to_string(),
            prefix_seed: Some(0xC0FF_EE00),
        }
    }
}

impl CodegenOptions {
    /// A plain, uninstrumented build (the `Base` baseline).
    pub fn baseline() -> Self {
        CodegenOptions {
            scheme: Scheme::None,
            cfi: false,
            split_stacks: false,
            separate_trusted_memory: false,
            emit_chkstk: false,
            passes: String::new(),
            prefix_seed: Some(0xC0FF_EE00),
        }
    }

    /// Full ConfLLVM with MPX bounds checks.
    pub fn mpx() -> Self {
        CodegenOptions {
            scheme: Scheme::Mpx,
            ..Default::default()
        }
    }

    /// Full ConfLLVM with segment-register bounds enforcement.
    pub fn segment() -> Self {
        CodegenOptions {
            scheme: Scheme::Segment,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(CodegenOptions::baseline().scheme, Scheme::None);
        assert!(!CodegenOptions::baseline().cfi);
        assert!(CodegenOptions::baseline().passes.is_empty());
        assert_eq!(CodegenOptions::mpx().scheme, Scheme::Mpx);
        assert!(CodegenOptions::mpx().cfi);
        assert_eq!(CodegenOptions::mpx().passes, PIPELINE_MPX_FULL);
        assert_eq!(CodegenOptions::segment().scheme, Scheme::Segment);
    }

    #[test]
    fn flag_facade_translates_to_pipelines() {
        assert_eq!(MpxOptimizations::default().pipeline(), PIPELINE_MPX_PR1);
        assert_eq!(MpxOptimizations::none().pipeline(), "");
        let only_coalesce = MpxOptimizations {
            coalesce_checks: true,
            fold_displacements: false,
            skip_stack_checks: false,
        };
        assert_eq!(only_coalesce.pipeline(), "mpx-coalesce-checks");
    }
}
