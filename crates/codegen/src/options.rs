//! Code-generation options: which scheme, which instrumentation, which
//! optimisations.  The paper's evaluation configurations (Base, OurBare,
//! OurCFI, OurMPX, OurSeg, ...) are built on top of these flags by
//! `confllvm-core`.

use confllvm_machine::Scheme;

/// The MPX-specific optimisations of Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpxOptimizations {
    /// Fold small constant displacements into the memory operand and check
    /// only the base register, relying on the 1 MiB guard areas around the
    /// regions.
    pub fold_displacements: bool,
    /// Skip a check if the same address value was already checked against the
    /// same region earlier in the basic block with no intervening call.
    pub coalesce_checks: bool,
    /// Do not check rsp-relative (stack) accesses at all: the inlined
    /// `_chkstk` keeps rsp inside the stack area, so rsp (and rsp+OFFSET) are
    /// always in bounds.
    pub skip_stack_checks: bool,
}

impl Default for MpxOptimizations {
    fn default() -> Self {
        MpxOptimizations {
            fold_displacements: true,
            coalesce_checks: true,
            skip_stack_checks: true,
        }
    }
}

impl MpxOptimizations {
    /// All optimisations disabled — the ablation baseline.
    pub fn none() -> Self {
        MpxOptimizations {
            fold_displacements: false,
            coalesce_checks: false,
            skip_stack_checks: false,
        }
    }
}

/// Full code-generation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Memory-partitioning scheme used for bounds enforcement.
    pub scheme: Scheme,
    /// Emit taint-aware CFI (magic sequences + expanded returns and indirect
    /// calls).
    pub cfi: bool,
    /// Keep public and private data on separate, lock-step stacks.
    pub split_stacks: bool,
    /// Separate T's memory from U's and switch stacks on every call into T.
    pub separate_trusted_memory: bool,
    /// Emit the inlined `_chkstk` stack-bounds enforcement in prologues.
    pub emit_chkstk: bool,
    /// MPX check optimisations.
    pub mpx: MpxOptimizations,
    /// Deterministic seed for the magic-prefix search (None = from entropy).
    pub prefix_seed: Option<u64>,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            scheme: Scheme::Segment,
            cfi: true,
            split_stacks: true,
            separate_trusted_memory: true,
            emit_chkstk: true,
            mpx: MpxOptimizations::default(),
            prefix_seed: Some(0xC0FF_EE00),
        }
    }
}

impl CodegenOptions {
    /// A plain, uninstrumented build (the `Base` baseline).
    pub fn baseline() -> Self {
        CodegenOptions {
            scheme: Scheme::None,
            cfi: false,
            split_stacks: false,
            separate_trusted_memory: false,
            emit_chkstk: false,
            mpx: MpxOptimizations::none(),
            prefix_seed: Some(0xC0FF_EE00),
        }
    }

    /// Full ConfLLVM with MPX bounds checks.
    pub fn mpx() -> Self {
        CodegenOptions {
            scheme: Scheme::Mpx,
            ..Default::default()
        }
    }

    /// Full ConfLLVM with segment-register bounds enforcement.
    pub fn segment() -> Self {
        CodegenOptions {
            scheme: Scheme::Segment,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(CodegenOptions::baseline().scheme, Scheme::None);
        assert!(!CodegenOptions::baseline().cfi);
        assert_eq!(CodegenOptions::mpx().scheme, Scheme::Mpx);
        assert!(CodegenOptions::mpx().cfi);
        assert_eq!(CodegenOptions::segment().scheme, Scheme::Segment);
    }
}
