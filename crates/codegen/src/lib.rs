//! # confllvm-codegen
//!
//! Code generation for the ConfLLVM reproduction: lowering the taint-typed IR
//! to the abstract x64 machine with the paper's instrumentation —
//!
//! * lock-step public/private stack frames ([`frame`], Section 3),
//! * MPX bound checks or segment-register prefixes on every user-level
//!   memory access ([`isel`], emitted naively), with the MPX optimisations
//!   of Section 5.1 — plus cross-block redundant-check elimination and
//!   loop-invariant check hoisting — as machine passes under a pass manager
//!   ([`mpass`]),
//! * taint-aware CFI: magic words at procedure entries and return sites,
//!   expanded returns, checked indirect calls (Section 4),
//! * post-link selection of the unique 59-bit magic prefixes and patching of
//!   every magic-dependent word ([`link`], Section 6).

pub mod frame;
pub mod isel;
pub mod link;
pub mod mpass;
pub mod options;

pub use frame::{AllocaArea, FrameLayout, Slot};
pub use isel::{CheckKind, CheckSite, CodegenError, CompiledFunction, MBlock, MagicPatch};
pub use link::{compile_module, compile_module_with_entry, CodegenReport};
pub use mpass::{MachineCtx, MachinePass, MachinePipeline, MACHINE_PASS_NAMES};
pub use options::{CodegenOptions, MpxOptimizations, PIPELINE_MPX_FULL, PIPELINE_MPX_PR1};

#[cfg(test)]
mod tests {
    use super::*;
    use confllvm_ir::{infer, lower, InferOptions};
    use confllvm_machine::{MInst, Scheme};
    use confllvm_minic::{parse, Sema};

    fn compile(src: &str, opts: &CodegenOptions) -> (confllvm_machine::Program, CodegenReport) {
        let prog = parse(src).unwrap();
        let sema = Sema::analyze(&prog).unwrap();
        let mut m = lower(&prog, &sema, "test").unwrap();
        confllvm_ir::passes::run(&mut m, confllvm_ir::PassOptions::default());
        infer(&mut m, InferOptions::default()).unwrap();
        compile_module(&m, opts).unwrap()
    }

    const SIMPLE: &str = "
        int add(int a, int b) { return a + b; }
        int main() { return add(40, 2); }
    ";

    const PRIVATE_BUF: &str = "
        extern void read_passwd(char *u, private char *p, int n);
        private int peek(char *u) {
            char pw[32];
            read_passwd(u, pw, 32);
            return pw[3];
        }
        int main() { peek(0); return 0; }
    ";

    #[test]
    fn baseline_has_no_instrumentation() {
        let (p, report) = compile(SIMPLE, &CodegenOptions::baseline());
        assert_eq!(report.bound_checks, 0);
        assert_eq!(report.cfi_checks, 0);
        assert_eq!(report.magic_words, 0);
        assert!(p
            .insts
            .iter()
            .all(|i| !matches!(i, MInst::MagicWord { .. })));
        assert!(p.insts.iter().any(|i| matches!(i, MInst::Ret)));
    }

    #[test]
    fn cfi_adds_magic_words_and_removes_plain_ret() {
        let mut opts = CodegenOptions::segment();
        opts.scheme = Scheme::None;
        let (p, report) = compile(SIMPLE, &opts);
        assert!(report.magic_words >= 3, "2 entries + >=1 return site");
        assert!(report.cfi_checks >= 2);
        assert!(
            p.insts.iter().all(|i| !matches!(i, MInst::Ret)),
            "CFI replaces every ret with the expanded sequence"
        );
        // All magic words must carry one of the two chosen prefixes.
        for inst in &p.insts {
            if let MInst::MagicWord { value } = inst {
                assert!(p.prefixes.is_call_word(*value) || p.prefixes.is_ret_word(*value));
            }
        }
    }

    #[test]
    fn mpx_emits_bound_checks_for_user_accesses() {
        let (p, report) = compile(PRIVATE_BUF, &CodegenOptions::mpx());
        assert!(report.bound_checks > 0);
        assert!(p.insts.iter().any(|i| matches!(i, MInst::BndCheck { .. })));
    }

    #[test]
    fn segment_scheme_prefixes_user_accesses() {
        let (p, _) = compile(PRIVATE_BUF, &CodegenOptions::segment());
        let has_gs = p.insts.iter().any(|i| match i {
            MInst::Load { mem, .. } | MInst::Store { mem, .. } => {
                mem.seg == Some(confllvm_machine::Seg::Gs)
            }
            _ => false,
        });
        let has_fs = p.insts.iter().any(|i| match i {
            MInst::Load { mem, .. } | MInst::Store { mem, .. } => {
                mem.seg == Some(confllvm_machine::Seg::Fs)
            }
            _ => false,
        });
        assert!(has_gs, "private accesses must be gs-prefixed");
        assert!(has_fs, "public accesses must be fs-prefixed");
        // The segmentation scheme never emits MPX checks.
        assert!(p.insts.iter().all(|i| !matches!(i, MInst::BndCheck { .. })));
    }

    #[test]
    fn mpx_optimisations_reduce_check_count() {
        let full = CodegenOptions::mpx();
        let mut unopt = CodegenOptions::mpx();
        unopt.passes = MpxOptimizations::none().pipeline();
        let (_, with_opts) = compile(PRIVATE_BUF, &full);
        let (_, without) = compile(PRIVATE_BUF, &unopt);
        assert!(
            with_opts.bound_checks < without.bound_checks,
            "optimisations should eliminate checks: {} vs {}",
            with_opts.bound_checks,
            without.bound_checks
        );
        assert!(with_opts.checks_eliminated > 0);
        assert_eq!(without.checks_eliminated, 0);
    }

    #[test]
    fn full_pipeline_beats_the_pr1_trio() {
        let full = CodegenOptions::mpx();
        let mut pr1 = CodegenOptions::mpx();
        pr1.passes = PIPELINE_MPX_PR1.to_string();
        // A loop over a global with a constant-index access: the full
        // pipeline hoists the `table[0]` check out of the loop.
        let src = "
            int table[64];
            int sum(int n) {
                int i; int s = 0;
                for (i = 0; i < n; i = i + 1) {
                    table[0] = table[0] + i;
                    s = s + table[0];
                }
                return s;
            }
            int main() { return sum(8); }
        ";
        let (_, full_r) = compile(src, &full);
        let (_, pr1_r) = compile(src, &pr1);
        assert!(full_r.checks_hoisted > 0, "table[0] must be hoisted");
        assert!(
            full_r.checks_eliminated > pr1_r.checks_eliminated,
            "cross-block elimination must remove more: {} vs {}",
            full_r.checks_eliminated,
            pr1_r.checks_eliminated
        );
    }

    #[test]
    fn function_symbols_and_entry_are_resolved() {
        let (p, _) = compile(SIMPLE, &CodegenOptions::segment());
        let main = p.function("main").unwrap();
        let add = p.function("add").unwrap();
        assert_ne!(main.entry_word, add.entry_word);
        assert_eq!(p.entry_function, 1, "main is the second function");
        // Direct call targets must point at add's entry word.
        assert!(p
            .insts
            .iter()
            .any(|i| matches!(i, MInst::CallDirect { target } if *target == add.entry_word)));
    }

    #[test]
    fn encode_decode_roundtrip_of_whole_program() {
        let (p, _) = compile(PRIVATE_BUF, &CodegenOptions::mpx());
        let bin = p.encode();
        let decoded = bin.decode().unwrap();
        assert_eq!(decoded.len(), p.insts.len());
        for ((_, d), orig) in decoded.iter().zip(&p.insts) {
            assert_eq!(d, orig);
        }
    }

    #[test]
    fn indirect_calls_are_checked_under_cfi() {
        let src = "
            int inc(int x) { return x + 1; }
            int apply(int (*fp)(int), int v) { return fp(v); }
            int main() { return apply(inc, 41); }
        ";
        let mut opts = CodegenOptions::segment();
        opts.scheme = Scheme::None;
        let (p, _) = compile(src, &opts);
        assert!(p.insts.iter().any(|i| matches!(i, MInst::LoadCode { .. })));
        assert!(p.insts.iter().any(|i| matches!(i, MInst::CallReg { .. })));
    }

    #[test]
    fn stack_arguments_beyond_four_are_passed() {
        let src = "
            int six(int a, int b, int c, int d, int e, int f) { return a + b + c + d + e + f; }
            int main() { return six(1, 2, 3, 4, 5, 6); }
        ";
        let (p, _) = compile(src, &CodegenOptions::baseline());
        assert!(p.function("six").is_some());
        assert!(!p.insts.is_empty());
    }
}
