//! Instruction selection: compiling one IR function into machine code with
//! the configured instrumentation (Sections 3–5).
//!
//! The selector is deliberately simple — every IR value lives in a stack
//! slot, operations are performed in a small set of scratch registers — but
//! it is *taint-faithful*: private values and buffers are placed on the
//! private (lock-step) stack, every user-level memory access is preceded by
//! the bound checks or segment prefixes of the selected scheme, and calls,
//! returns and indirect calls carry the taint-aware CFI instrumentation.
//!
//! Under the MPX scheme the selector emits checks *naively* — a full bndcl /
//! bndcu pair before every memory access, stack slots included — and records
//! a [`CheckSite`] for each pair.  The machine-level pass manager
//! ([`crate::mpass`]) then removes the redundant ones according to the
//! configured pipeline; an empty pipeline therefore corresponds to the
//! paper's fully unoptimised ablation baseline.

use std::collections::HashMap;

use confllvm_ir::{
    BinOp, BlockId, CmpOp, Function, Inst, MemSize, Module, Operand, Terminator, ValueId,
};
use confllvm_machine::{
    trap, AluOp, BndReg, Cond, MInst, MemOperand, MemoryLayout, Reg, RegImm, Scheme, Seg, Taint,
    ARG_REGS, RET_REG, SCRATCH0, SCRATCH1, SCRATCH2,
};

use crate::frame::FrameLayout;
use crate::options::CodegenOptions;

/// What a bound-check pair protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// An rsp-relative access to the function's own frame (spills, slots,
    /// stack arguments) — removable when `_chkstk` enforcement is on.
    Stack,
    /// A user-level access through a pointer value.
    User,
}

/// One emitted bndcl/bndcu pair, with enough provenance for the machine
/// passes to reason about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckSite {
    /// Instruction indices of the lower and upper check.
    pub lower: usize,
    pub upper: usize,
    pub kind: CheckKind,
    /// IR block the access belongs to.
    pub block: BlockId,
    /// For user checks: the base value of the checked operand (None for
    /// stack checks and for checks of directly materialised global
    /// addresses).
    pub base_val: Option<ValueId>,
    /// Global-table index when the checked base is a global's address (a
    /// link-time constant).
    pub global: Option<u32>,
    /// Displacement of the checked memory operand.
    pub disp: i32,
    /// Region taint the check enforces (meaningless for stack checks).
    pub taint: Taint,
}

/// The machine span of one IR block inside [`CompiledFunction::insts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MBlock {
    pub id: BlockId,
    /// First instruction of the block (the entry block includes the
    /// prologue).
    pub start: usize,
    /// First instruction of the terminator sequence — the insertion point
    /// for code hoisted to the end of the block.
    pub term_start: usize,
}

/// A placeholder in the instruction stream whose final value depends on the
/// magic prefixes chosen at link time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MagicPatch {
    /// `MagicWord` at a procedure entry: `MCall ++ taint bits`.
    CallMagic { args: [Taint; 4], ret: Taint },
    /// `MagicWord` at a valid return site: `MRet ++ taint bit`.
    RetMagic { ret: Taint },
    /// `MovImm` of the *bitwise negation* of a call magic word (indirect-call
    /// check).
    NotCallMagic { args: [Taint; 4], ret: Taint },
    /// `MovImm` of the negation of a return-site magic word (return check).
    NotRetMagic { ret: Taint },
}

/// The output of compiling one function, before linking.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    pub name: String,
    /// Machine instructions.  `Jmp`/`Jcc` targets are *local label ids*;
    /// `CallDirect` targets and `MovFunc` indices are *function indices*;
    /// both are rewritten by the linker.
    pub insts: Vec<MInst>,
    /// Label id -> index into `insts`.
    pub labels: Vec<usize>,
    /// Positions whose encoding depends on the magic prefixes.
    pub patches: Vec<(usize, MagicPatch)>,
    /// Taints encoded into the procedure's call magic word.
    pub arg_taints: [Taint; 4],
    pub ret_taint: Taint,
    /// Counts used by reports: how many bound checks / CFI checks remain
    /// after the machine passes.
    pub bound_checks: usize,
    pub cfi_checks: usize,
    /// Every emitted bndcl/bndcu pair (maintained by the machine passes).
    pub check_sites: Vec<CheckSite>,
    /// Machine spans of the IR blocks, in emission order.
    pub mblocks: Vec<MBlock>,
    /// The frame layout the code was emitted against.  The machine passes
    /// must reason with exactly this layout (slot displacements feed the
    /// kill sets and hoisted rematerialisations), so it travels with the
    /// function instead of being rebuilt.
    pub frame: FrameLayout,
}

/// Errors raised during instruction selection / linking.
#[derive(Debug, Clone)]
pub struct CodegenError {
    pub message: String,
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen error: {}", self.message)
    }
}

impl std::error::Error for CodegenError {}

fn err(msg: impl Into<String>) -> CodegenError {
    CodegenError {
        message: msg.into(),
    }
}

/// Compile one function.
pub fn compile_function(
    module: &Module,
    f: &Function,
    opts: &CodegenOptions,
    func_index: &HashMap<String, usize>,
) -> Result<CompiledFunction, CodegenError> {
    let layout = MemoryLayout::new(opts.scheme, opts.split_stacks, opts.separate_trusted_memory);
    let frame = FrameLayout::build(f, opts);
    let c = FnCompiler {
        module,
        f,
        opts,
        layout,
        frame,
        func_index,
        insts: Vec::new(),
        labels: Vec::new(),
        patches: Vec::new(),
        block_labels: HashMap::new(),
        fail_label: 0,
        add_const_defs: HashMap::new(),
        global_defs: HashMap::new(),
        check_sites: Vec::new(),
        mblocks: Vec::new(),
        cur_block: BlockId(0),
        bound_checks: 0,
        cfi_checks: 0,
    };
    c.compile()
}

/// Compute the `v -> (base, const)` map of values defined as `base + const`
/// — the displacement-folding addressing patterns (shared with the machine
/// passes, which must mirror the selector's address resolution).
pub fn add_const_defs(f: &Function) -> HashMap<ValueId, (ValueId, i64)> {
    let mut map = HashMap::new();
    for b in &f.blocks {
        for inst in &b.insts {
            if let Inst::Bin {
                dst,
                op: BinOp::Add,
                lhs: Operand::Value(base),
                rhs: Operand::Const(c),
            } = inst
            {
                map.insert(*dst, (*base, *c));
            }
        }
    }
    map
}

/// Values defined by `GlobalAddr`, mapped to their global-table index.
pub fn global_addr_defs(module: &Module, f: &Function) -> HashMap<ValueId, u32> {
    let mut map = HashMap::new();
    for b in &f.blocks {
        for inst in &b.insts {
            if let Inst::GlobalAddr { dst, name } = inst {
                if let Some(i) = module.globals.iter().position(|g| &g.name == name) {
                    map.insert(*dst, i as u32);
                }
            }
        }
    }
    map
}

/// The instruction sequence that materialises the value of `v` into `dst`
/// (shared between the selector's value loads and the check-hoisting machine
/// pass, which must re-materialise loop-invariant bases in preheaders).
pub fn materialize_value(
    frame: &FrameLayout,
    opts: &CodegenOptions,
    layout: &MemoryLayout,
    v: ValueId,
    dst: Reg,
) -> Vec<MInst> {
    let offset = layout.private_stack_offset();
    if let Some(area) = frame.alloca(v) {
        // The value of an alloca is its address.
        let extra = if area.taint == Taint::Private && opts.split_stacks {
            offset
        } else {
            0
        };
        return vec![
            MInst::MovReg { dst, src: Reg::Rsp },
            MInst::Alu {
                op: AluOp::Add,
                dst,
                src: RegImm::Imm(area.offset as i64 + extra),
            },
        ];
    }
    let slot = frame.slot(v).unwrap_or(crate::frame::Slot {
        offset: 0,
        taint: Taint::Public,
    });
    let mem = stack_slot_mem(opts, layout, slot.offset, slot.taint);
    vec![MInst::Load { dst, mem, size: 8 }]
}

/// Memory operand for a stack location at `off` from rsp in the frame of the
/// given taint (the scheme-dependent half of the selector's slot addressing).
pub fn stack_slot_mem(
    opts: &CodegenOptions,
    layout: &MemoryLayout,
    off: i32,
    taint: Taint,
) -> MemOperand {
    let private = taint == Taint::Private && opts.split_stacks;
    match opts.scheme {
        Scheme::Segment => {
            let seg = if private { Seg::Gs } else { Seg::Fs };
            MemOperand::base_disp(Reg::Rsp, off).with_seg(seg)
        }
        _ => {
            let disp = if private {
                off + layout.private_stack_offset() as i32
            } else {
                off
            };
            MemOperand::base_disp(Reg::Rsp, disp)
        }
    }
}

struct FnCompiler<'a> {
    module: &'a Module,
    f: &'a Function,
    opts: &'a CodegenOptions,
    layout: MemoryLayout,
    frame: FrameLayout,
    func_index: &'a HashMap<String, usize>,
    insts: Vec<MInst>,
    labels: Vec<usize>,
    patches: Vec<(usize, MagicPatch)>,
    block_labels: HashMap<u32, u32>,
    fail_label: u32,
    /// `v -> (base, const)` for values defined as `base + const` (used for the
    /// MPX displacement-folding addressing patterns).
    add_const_defs: HashMap<ValueId, (ValueId, i64)>,
    /// Values holding global addresses, for check-site provenance.
    global_defs: HashMap<ValueId, u32>,
    check_sites: Vec<CheckSite>,
    mblocks: Vec<MBlock>,
    cur_block: BlockId,
    bound_checks: usize,
    cfi_checks: usize,
}

impl<'a> FnCompiler<'a> {
    fn emit(&mut self, inst: MInst) {
        self.insts.push(inst);
    }

    fn new_label(&mut self) -> u32 {
        self.labels.push(usize::MAX);
        (self.labels.len() - 1) as u32
    }

    fn bind_label(&mut self, label: u32) {
        self.labels[label as usize] = self.insts.len();
    }

    fn emit_patched(&mut self, inst: MInst, patch: MagicPatch) {
        self.patches.push((self.insts.len(), patch));
        self.insts.push(inst);
    }

    // ----- slot addressing --------------------------------------------------

    /// Memory operand for a stack location at `off` from rsp in the frame of
    /// the given taint.
    fn stack_mem(&self, off: i32, taint: Taint) -> MemOperand {
        stack_slot_mem(self.opts, &self.layout, off, taint)
    }

    /// Emit a (naively checked) stack access.  Under the MPX scheme every
    /// stack access gets a check pair here; the `mpx-skip-stack-checks`
    /// machine pass removes them when `_chkstk` enforcement justifies it.
    fn emit_stack_access(
        &mut self,
        mem: MemOperand,
        taint: Taint,
        store_from: Option<Reg>,
        load_to: Option<Reg>,
    ) {
        if self.opts.scheme == Scheme::Mpx {
            let bnd = if taint == Taint::Private && self.opts.split_stacks {
                BndReg::Bnd1
            } else {
                BndReg::Bnd0
            };
            self.check_sites.push(CheckSite {
                lower: self.insts.len(),
                upper: self.insts.len() + 1,
                kind: CheckKind::Stack,
                block: self.cur_block,
                base_val: None,
                global: None,
                disp: 0,
                taint,
            });
            self.emit(MInst::BndCheck {
                bnd,
                mem: mem.clone(),
                upper: false,
            });
            self.emit(MInst::BndCheck {
                bnd,
                mem: mem.clone(),
                upper: true,
            });
            self.bound_checks += 2;
        }
        if let Some(src) = store_from {
            self.emit(MInst::Store { mem, src, size: 8 });
        } else if let Some(dst) = load_to {
            self.emit(MInst::Load { dst, mem, size: 8 });
        }
    }

    /// Load the value of `v` into `dst`.
    fn load_value(&mut self, dst: Reg, v: ValueId) {
        if self.frame.alloca(v).is_some() {
            let seq = materialize_value(&self.frame, self.opts, &self.layout, v, dst);
            for inst in seq {
                self.emit(inst);
            }
            return;
        }
        let slot = self.frame.slot(v).unwrap_or(crate::frame::Slot {
            offset: 0,
            taint: Taint::Public,
        });
        let mem = self.stack_mem(slot.offset, slot.taint);
        self.emit_stack_access(mem, slot.taint, None, Some(dst));
    }

    /// Store `src` into the home slot of `v`.
    fn store_value(&mut self, src: Reg, v: ValueId) {
        if self.frame.alloca(v).is_some() {
            // Allocas are never re-assigned; nothing to do.
            return;
        }
        let slot = self.frame.slot(v).unwrap_or(crate::frame::Slot {
            offset: 0,
            taint: Taint::Public,
        });
        let mem = self.stack_mem(slot.offset, slot.taint);
        self.emit_stack_access(mem, slot.taint, Some(src), None);
    }

    /// Load an operand (constant or value) into `dst`.
    fn load_operand(&mut self, dst: Reg, op: Operand) {
        match op {
            Operand::Const(c) => self.emit(MInst::MovImm { dst, imm: c }),
            Operand::Value(v) => self.load_value(dst, v),
        }
    }

    // ----- user-level memory accesses ----------------------------------------

    /// Resolve the address operand of a user-level load/store into a base
    /// register plus displacement.  Under the MPX scheme `base + const`
    /// definitions are always folded into the addressing mode (the
    /// displacement stays small enough for the guard areas); whether the
    /// *check* covers the base alone or the full operand is decided later by
    /// the `mpx-fold-displacements` machine pass.
    fn resolve_address(&mut self, addr: Operand, base_reg: Reg) -> (Operand, i32) {
        let guard = MemoryLayout::MPX_GUARD_SIZE as i64 - 1;
        if self.opts.scheme == Scheme::Mpx {
            if let Operand::Value(v) = addr {
                if let Some((base, c)) = self.add_const_defs.get(&v).copied() {
                    if c.abs() < guard {
                        self.load_value(base_reg, base);
                        return (Operand::Value(base), c as i32);
                    }
                }
            }
        }
        self.load_operand(base_reg, addr);
        (addr, 0)
    }

    /// Build the memory operand (and emit the scheme's checks) for a
    /// user-level access of the given region taint.  MPX checks are emitted
    /// unconditionally on the full operand and recorded as a [`CheckSite`];
    /// elimination is the machine passes' job.
    fn user_mem(
        &mut self,
        base_reg: Reg,
        disp: i32,
        region: Taint,
        addr_key: Operand,
    ) -> MemOperand {
        match self.opts.scheme {
            Scheme::None => MemOperand::base_disp(base_reg, disp),
            Scheme::Segment => {
                let seg = if region == Taint::Private {
                    Seg::Gs
                } else {
                    Seg::Fs
                };
                MemOperand::base_disp(base_reg, disp).with_seg(seg)
            }
            Scheme::Mpx => {
                let bnd = if region == Taint::Private {
                    BndReg::Bnd1
                } else {
                    BndReg::Bnd0
                };
                let base_val = addr_key.as_value();
                let global = base_val.and_then(|v| self.global_defs.get(&v).copied());
                self.check_sites.push(CheckSite {
                    lower: self.insts.len(),
                    upper: self.insts.len() + 1,
                    kind: CheckKind::User,
                    block: self.cur_block,
                    base_val,
                    global,
                    disp,
                    taint: region,
                });
                let check_mem = MemOperand::base_disp(base_reg, disp);
                self.emit(MInst::BndCheck {
                    bnd,
                    mem: check_mem.clone(),
                    upper: false,
                });
                self.emit(MInst::BndCheck {
                    bnd,
                    mem: check_mem,
                    upper: true,
                });
                self.bound_checks += 2;
                MemOperand::base_disp(base_reg, disp)
            }
        }
    }

    // ----- calls -------------------------------------------------------------

    fn emit_call_arguments(&mut self, args: &[Operand]) {
        for (i, arg) in args.iter().enumerate() {
            if i < 4 {
                self.load_operand(ARG_REGS[i], *arg);
            } else {
                self.load_operand(SCRATCH0, *arg);
                let taint = self.f.operand_taint(*arg);
                let off = FrameLayout::outgoing_stack_arg_offset(i);
                let mem = self.stack_mem(off, taint);
                self.emit_stack_access(mem, taint, Some(SCRATCH0), None);
            }
        }
    }

    fn emit_ret_site_magic(&mut self, ret: Taint) {
        if self.opts.cfi {
            self.emit_patched(MInst::MagicWord { value: 0 }, MagicPatch::RetMagic { ret });
        }
    }

    // ----- main driver -------------------------------------------------------

    fn compile(mut self) -> Result<CompiledFunction, CodegenError> {
        // Pre-compute the addressing-pattern and global-address maps shared
        // with the machine passes.
        self.add_const_defs = add_const_defs(self.f);
        self.global_defs = global_addr_defs(self.module, self.f);

        let arg_taints = confllvm_machine::pad_arg_taints(&self.f.param_taints);
        let ret_taint = self.f.ret_taint;

        // Procedure-entry magic word.
        if self.opts.cfi {
            self.emit_patched(
                MInst::MagicWord { value: 0 },
                MagicPatch::CallMagic {
                    args: arg_taints,
                    ret: ret_taint,
                },
            );
        }

        // Prologue.
        if self.frame.frame_size > 0 {
            self.emit(MInst::Alu {
                op: AluOp::Sub,
                dst: Reg::Rsp,
                src: RegImm::Imm(self.frame.frame_size as i64),
            });
        }
        if self.opts.emit_chkstk {
            self.emit(MInst::ChkStk);
        }
        // Spill incoming arguments into their slots.
        for (i, p) in self.f.params.iter().enumerate() {
            if i < 4 {
                self.store_value(ARG_REGS[i], *p);
            } else {
                let taint = self.f.param_taints[i];
                let off = self.frame.incoming_stack_arg_offset(i);
                let mem = self.stack_mem(off, taint);
                self.emit_stack_access(mem, taint, None, Some(SCRATCH0));
                self.store_value(SCRATCH0, *p);
            }
        }

        // Labels for blocks and the CFI failure stub.
        for b in &self.f.blocks {
            let l = self.new_label();
            self.block_labels.insert(b.id.0, l);
        }
        self.fail_label = self.new_label();

        // Entry block falls through; make sure it is first.
        let blocks = self.f.blocks.clone();
        for (bi, block) in blocks.iter().enumerate() {
            let label = self.block_labels[&block.id.0];
            // The entry block's machine span includes the prologue above.
            let start = if bi == 0 { 0 } else { self.insts.len() };
            self.bind_label(label);
            self.cur_block = block.id;
            for inst in &block.insts {
                self.compile_inst(inst)?;
            }
            let term_start = self.insts.len();
            self.mblocks.push(MBlock {
                id: block.id,
                start,
                term_start,
            });
            self.compile_terminator(&block.term)?;
        }

        // CFI failure stub.
        self.bind_label(self.fail_label);
        self.emit(MInst::Trap {
            code: trap::CFI_FAIL,
        });

        Ok(CompiledFunction {
            name: self.f.name.clone(),
            insts: self.insts,
            labels: self.labels,
            patches: self.patches,
            arg_taints,
            ret_taint,
            bound_checks: self.bound_checks,
            cfi_checks: self.cfi_checks,
            check_sites: self.check_sites,
            mblocks: self.mblocks,
            frame: self.frame,
        })
    }

    fn compile_inst(&mut self, inst: &Inst) -> Result<(), CodegenError> {
        match inst {
            Inst::Alloca { .. } => {
                // Space is reserved in the frame; nothing to execute.
            }
            Inst::Load {
                dst,
                addr,
                size,
                region,
                ..
            } => {
                let (key, disp) = self.resolve_address(*addr, SCRATCH2);
                let mem = self.user_mem(SCRATCH2, disp, *region, key);
                self.emit(MInst::Load {
                    dst: SCRATCH0,
                    mem,
                    size: size.bytes() as u8,
                });
                self.store_value(SCRATCH0, *dst);
            }
            Inst::Store {
                addr,
                value,
                size,
                region,
                ..
            } => {
                let (key, disp) = self.resolve_address(*addr, SCRATCH2);
                self.load_operand(SCRATCH0, *value);
                let mem = self.user_mem(SCRATCH2, disp, *region, key);
                self.emit(MInst::Store {
                    mem,
                    src: SCRATCH0,
                    size: size.bytes() as u8,
                });
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                self.load_operand(SCRATCH0, *lhs);
                let src = match rhs {
                    Operand::Const(c) => RegImm::Imm(*c),
                    Operand::Value(_) => {
                        self.load_operand(SCRATCH1, *rhs);
                        RegImm::Reg(SCRATCH1)
                    }
                };
                self.emit(MInst::Alu {
                    op: alu_of(*op),
                    dst: SCRATCH0,
                    src,
                });
                self.store_value(SCRATCH0, *dst);
            }
            Inst::Cmp { dst, op, lhs, rhs } => {
                self.load_operand(SCRATCH0, *lhs);
                let rhs_ri = match rhs {
                    Operand::Const(c) => RegImm::Imm(*c),
                    Operand::Value(_) => {
                        self.load_operand(SCRATCH1, *rhs);
                        RegImm::Reg(SCRATCH1)
                    }
                };
                self.emit(MInst::Cmp {
                    lhs: SCRATCH0,
                    rhs: rhs_ri,
                });
                self.emit(MInst::SetCond {
                    dst: SCRATCH0,
                    cond: cond_of(*op),
                });
                self.store_value(SCRATCH0, *dst);
            }
            Inst::Copy { dst, src } => {
                self.load_operand(SCRATCH0, *src);
                self.store_value(SCRATCH0, *dst);
            }
            Inst::GlobalAddr { dst, name } => {
                let index = self
                    .module
                    .globals
                    .iter()
                    .position(|g| &g.name == name)
                    .ok_or_else(|| err(format!("unknown global `{name}`")))?;
                self.emit(MInst::MovGlobal {
                    dst: SCRATCH0,
                    index: index as u32,
                });
                self.store_value(SCRATCH0, *dst);
            }
            Inst::FuncAddr { dst, name } => {
                let index = *self
                    .func_index
                    .get(name)
                    .ok_or_else(|| err(format!("unknown function `{name}`")))?;
                self.emit(MInst::MovFunc {
                    dst: SCRATCH0,
                    index: index as u32,
                });
                self.store_value(SCRATCH0, *dst);
            }
            Inst::Call {
                dst, callee, args, ..
            } => {
                let callee_idx = *self
                    .func_index
                    .get(callee)
                    .ok_or_else(|| err(format!("call to unknown function `{callee}`")))?;
                let callee_fn = self
                    .module
                    .function(callee)
                    .ok_or_else(|| err(format!("call to unknown function `{callee}`")))?;
                self.emit_call_arguments(args);
                self.emit(MInst::CallDirect {
                    target: callee_idx as u32,
                });
                self.emit_ret_site_magic(callee_fn.ret_taint);
                if let Some(d) = dst {
                    self.store_value(RET_REG, *d);
                }
            }
            Inst::CallExtern {
                dst, callee, args, ..
            } => {
                let index = self
                    .module
                    .extern_index(callee)
                    .ok_or_else(|| err(format!("call to unknown extern `{callee}`")))?;
                let ret = self
                    .module
                    .extern_func(callee)
                    .map(|e| e.ret_taint)
                    .unwrap_or(Taint::Public);
                self.emit_call_arguments(args);
                self.emit(MInst::CallExternal {
                    index: index as u16,
                });
                self.emit_ret_site_magic(ret);
                if let Some(d) = dst {
                    self.store_value(RET_REG, *d);
                }
            }
            Inst::CallIndirect {
                dst,
                target,
                args,
                param_taints,
                ret_taint,
                ..
            } => {
                self.load_operand(SCRATCH2, *target);
                if self.opts.cfi {
                    // Check that the target starts with a call magic word whose
                    // taint bits match the static signature of the pointer.
                    self.emit(MInst::LoadCode {
                        dst: SCRATCH0,
                        addr: SCRATCH2,
                    });
                    self.emit_patched(
                        MInst::MovImm {
                            dst: SCRATCH1,
                            imm: 0,
                        },
                        MagicPatch::NotCallMagic {
                            args: confllvm_machine::pad_arg_taints(param_taints),
                            ret: *ret_taint,
                        },
                    );
                    self.emit(MInst::Alu {
                        op: AluOp::Xor,
                        dst: SCRATCH1,
                        src: RegImm::Imm(-1),
                    });
                    self.emit(MInst::Cmp {
                        lhs: SCRATCH0,
                        rhs: RegImm::Reg(SCRATCH1),
                    });
                    self.emit(MInst::Jcc {
                        cond: Cond::Ne,
                        target: self.fail_label,
                    });
                    // Skip the magic word itself.
                    self.emit(MInst::Alu {
                        op: AluOp::Add,
                        dst: SCRATCH2,
                        src: RegImm::Imm(1),
                    });
                    self.cfi_checks += 1;
                }
                self.emit_call_arguments(args);
                self.emit(MInst::CallReg { reg: SCRATCH2 });
                self.emit_ret_site_magic(*ret_taint);
                if let Some(d) = dst {
                    self.store_value(RET_REG, *d);
                }
            }
        }
        Ok(())
    }

    fn compile_terminator(&mut self, term: &Terminator) -> Result<(), CodegenError> {
        match term {
            Terminator::Br(b) => {
                let l = self.block_labels[&b.0];
                self.emit(MInst::Jmp { target: l });
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
                ..
            } => {
                self.load_operand(SCRATCH0, *cond);
                self.emit(MInst::Cmp {
                    lhs: SCRATCH0,
                    rhs: RegImm::Imm(0),
                });
                let lt = self.block_labels[&then_bb.0];
                let le = self.block_labels[&else_bb.0];
                self.emit(MInst::Jcc {
                    cond: Cond::Ne,
                    target: lt,
                });
                self.emit(MInst::Jmp { target: le });
            }
            Terminator::Ret { value, .. } => {
                if let Some(v) = value {
                    self.load_operand(RET_REG, *v);
                } else if !self.f.has_ret_value {
                    // Scrub the return register: a void function must not
                    // leak a stale private value to its (public-expecting)
                    // caller — the register-clearing discipline of Section 4
                    // applied to returns, and what lets ConfVerify classify
                    // the return site.
                    self.emit(MInst::MovImm {
                        dst: RET_REG,
                        imm: 0,
                    });
                }
                if self.frame.frame_size > 0 {
                    self.emit(MInst::Alu {
                        op: AluOp::Add,
                        dst: Reg::Rsp,
                        src: RegImm::Imm(self.frame.frame_size as i64),
                    });
                }
                if self.opts.cfi {
                    // The taint-aware return expansion of Section 4.
                    self.emit(MInst::Pop { dst: SCRATCH0 });
                    self.emit(MInst::LoadCode {
                        dst: SCRATCH1,
                        addr: SCRATCH0,
                    });
                    self.emit_patched(
                        MInst::MovImm {
                            dst: SCRATCH2,
                            imm: 0,
                        },
                        MagicPatch::NotRetMagic {
                            ret: self.f.ret_taint,
                        },
                    );
                    self.emit(MInst::Alu {
                        op: AluOp::Xor,
                        dst: SCRATCH2,
                        src: RegImm::Imm(-1),
                    });
                    self.emit(MInst::Cmp {
                        lhs: SCRATCH1,
                        rhs: RegImm::Reg(SCRATCH2),
                    });
                    self.emit(MInst::Jcc {
                        cond: Cond::Ne,
                        target: self.fail_label,
                    });
                    self.emit(MInst::Alu {
                        op: AluOp::Add,
                        dst: SCRATCH0,
                        src: RegImm::Imm(1),
                    });
                    self.emit(MInst::JmpReg { reg: SCRATCH0 });
                    self.cfi_checks += 1;
                } else {
                    self.emit(MInst::Ret);
                }
            }
        }
        Ok(())
    }
}

fn alu_of(op: BinOp) -> AluOp {
    match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div => AluOp::Div,
        BinOp::Rem => AluOp::Rem,
        BinOp::Shl => AluOp::Shl,
        BinOp::Shr => AluOp::Shr,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Or,
        BinOp::Xor => AluOp::Xor,
    }
}

fn cond_of(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::Eq,
        CmpOp::Ne => Cond::Ne,
        CmpOp::Lt => Cond::Lt,
        CmpOp::Le => Cond::Le,
        CmpOp::Gt => Cond::Gt,
        CmpOp::Ge => Cond::Ge,
    }
}

#[allow(unused_imports)]
use MemSize as _MemSizeUsed;
