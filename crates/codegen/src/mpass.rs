//! The machine-level pass manager: bounds-check optimisation passes over
//! compiled (but not yet linked) functions.
//!
//! Instruction selection emits MPX checks naively — a bndcl/bndcu pair
//! before *every* memory access — and records a [`CheckSite`] for each pair.
//! The passes here remove the redundant ones:
//!
//! * `mpx-skip-stack-checks` — drop checks on rsp-relative frame accesses
//!   (the inlined `_chkstk` keeps rsp inside the stack area, Section 5.1),
//! * `mpx-fold-displacements` — narrow a check of `[base + disp]` to
//!   `[base]` for small `disp`, relying on the 1 MiB guard areas around the
//!   regions (Section 5.1),
//! * `mpx-coalesce-checks` — drop a check whose address was already checked
//!   against the same region earlier *in the same block* with no intervening
//!   call (Section 5.1),
//! * `mpx-hoist-checks` — emit one check of a loop-invariant base in the
//!   loop preheader, making the per-iteration checks redundant,
//! * `mpx-cross-block-elim` — drop checks that are available on *every* CFG
//!   path (a forward must-dataflow over `confllvm_ir::dataflow::MustSet`)
//!   **and** along the linear code layout, which is the discipline
//!   ConfVerify's single-pass scan can re-derive.  Requiring both keeps the
//!   elimination semantically sound (no path reaches the access unchecked)
//!   and verifiable (the binary still convinces the independent checker).
//!
//! All passes are taint-aware by construction: a check is only ever removed
//! when a check of the *same region* against the same address is proved to
//! dominate it, so the set of binaries the verifier must accept never
//! widens.

use std::collections::{BTreeSet, HashMap, HashSet};

use confllvm_ir::dataflow::{solve_forward, ForwardTransfer, MustSet};
use confllvm_ir::{dominators, natural_loops, BlockId, Function, Inst, Module, Operand, ValueId};
use confllvm_machine::{BndReg, MInst, MemOperand, MemoryLayout, Scheme, Taint, SCRATCH2};

use crate::frame::FrameLayout;
use crate::isel::{
    add_const_defs, global_addr_defs, materialize_value, CheckKind, CheckSite, CompiledFunction,
};
use crate::options::CodegenOptions;
use crate::CodegenError;

/// Displacements the guard areas around the MPX regions can absorb — the
/// single shared limit the selector's address folding also uses.
const GUARD: i64 = MemoryLayout::MPX_GUARD_SIZE as i64 - 1;

/// Symbolic base of a checked address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BaseSym {
    /// The (single-assignment) value the base register was loaded from.
    Val(ValueId),
    /// A global's address — a link-time constant, invariant everywhere.
    Global(u32),
}

/// The identity of a bounds check: what address against which region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CheckKey {
    pub base: BaseSym,
    pub disp: i32,
    pub taint: Taint,
}

/// Shared analysis context handed to every machine pass of one function.
pub struct MachineCtx<'a> {
    pub module: &'a Module,
    pub f: &'a Function,
    pub frame: &'a FrameLayout,
    pub opts: &'a CodegenOptions,
    pub layout: MemoryLayout,
    /// Set by `mpx-fold-displacements`: checks now cover the base register
    /// only, so availability keys ignore displacements.
    pub folded: bool,
    /// Keys checked at the *end* of a preheader block by `mpx-hoist-checks`,
    /// consumed by the availability analysis of `mpx-cross-block-elim`.
    pub hoisted: HashMap<BlockId, Vec<CheckKey>>,
    add_const: HashMap<ValueId, (ValueId, i64)>,
    globals: HashMap<ValueId, u32>,
}

impl<'a> MachineCtx<'a> {
    pub fn new(
        module: &'a Module,
        f: &'a Function,
        frame: &'a FrameLayout,
        opts: &'a CodegenOptions,
    ) -> MachineCtx<'a> {
        MachineCtx {
            module,
            f,
            frame,
            opts,
            layout: MemoryLayout::new(opts.scheme, opts.split_stacks, opts.separate_trusted_memory),
            folded: false,
            hoisted: HashMap::new(),
            add_const: add_const_defs(f),
            globals: global_addr_defs(module, f),
        }
    }

    /// The check key of an IR access address, mirroring the selector's
    /// address resolution (and the fold pass when it has run).
    fn key_of_addr(&self, addr: Operand, region: Taint) -> Option<CheckKey> {
        let v = addr.as_value()?;
        let (base, disp) = match self.add_const.get(&v).copied() {
            Some((b, c)) if c.abs() < GUARD => (b, c as i32),
            _ => (v, 0),
        };
        let disp = if self.folded { 0 } else { disp };
        let sym = match self.globals.get(&base) {
            Some(g) => BaseSym::Global(*g),
            None => BaseSym::Val(base),
        };
        Some(CheckKey {
            base: sym,
            disp,
            taint: region,
        })
    }

    /// The key of a recorded check site.
    fn key_of_site(&self, site: &CheckSite) -> Option<CheckKey> {
        let sym = match (site.global, site.base_val) {
            (Some(g), _) => BaseSym::Global(g),
            (None, Some(v)) => BaseSym::Val(v),
            (None, None) => return None,
        };
        Some(CheckKey {
            base: sym,
            disp: site.disp,
            taint: site.taint,
        })
    }
}

/// One machine transformation; same conventions as `confllvm_ir::pm::Pass`.
pub trait MachinePass {
    fn name(&self) -> &'static str;
    fn description(&self) -> &'static str;
    /// Passes that, when present, must be scheduled before this one.
    fn run_after(&self) -> &'static [&'static str] {
        &[]
    }
    /// Passes that must be present in any pipeline containing this one.
    fn requires(&self) -> &'static [&'static str] {
        &[]
    }
    /// Transform one compiled function; returns the number of changes.
    fn run(&self, mf: &mut CompiledFunction, cx: &mut MachineCtx) -> usize;
}

/// All registered machine pass names, in recommended pipeline order.
pub const MACHINE_PASS_NAMES: &[&str] = &[
    "mpx-skip-stack-checks",
    "mpx-fold-displacements",
    "mpx-coalesce-checks",
    "mpx-hoist-checks",
    "mpx-cross-block-elim",
];

/// Instantiate a registered machine pass by name.
pub fn create_machine_pass(name: &str) -> Option<Box<dyn MachinePass>> {
    match name {
        "mpx-skip-stack-checks" => Some(Box::new(SkipStackChecks)),
        "mpx-fold-displacements" => Some(Box::new(FoldDisplacements)),
        "mpx-coalesce-checks" => Some(Box::new(CoalesceChecks)),
        "mpx-hoist-checks" => Some(Box::new(HoistChecks)),
        "mpx-cross-block-elim" => Some(Box::new(CrossBlockElim)),
        _ => None,
    }
}

/// Per-pass change counts of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct MPipelineReport {
    pub per_pass: Vec<(&'static str, usize)>,
}

impl MPipelineReport {
    pub fn changes_of(&self, name: &str) -> usize {
        self.per_pass
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, c)| c)
            .sum()
    }

    pub fn merge(&mut self, other: &MPipelineReport) {
        for (name, c) in &other.per_pass {
            match self.per_pass.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => *acc += c,
                None => self.per_pass.push((name, *c)),
            }
        }
    }
}

/// An ordered, validated machine pipeline.
pub struct MachinePipeline {
    passes: Vec<Box<dyn MachinePass>>,
}

impl std::fmt::Debug for MachinePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachinePipeline")
            .field("passes", &self.pass_names())
            .finish()
    }
}

impl MachinePipeline {
    /// Parse a comma-separated pipeline description (empty = no passes).
    pub fn parse(text: &str) -> Result<MachinePipeline, CodegenError> {
        let mut passes: Vec<Box<dyn MachinePass>> = Vec::new();
        for name in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match create_machine_pass(name) {
                Some(p) => passes.push(p),
                None => {
                    return Err(CodegenError {
                        message: format!("unknown machine pass `{name}`"),
                    })
                }
            }
        }
        let names: Vec<&'static str> = passes.iter().map(|p| p.name()).collect();
        confllvm_ir::pm::validate_constraints(
            &names,
            |i| passes[i].run_after(),
            |i| passes[i].requires(),
        )
        .map_err(|e| CodegenError {
            message: format!("invalid machine pipeline: {e}"),
        })?;
        Ok(MachinePipeline { passes })
    }

    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run the pipeline over one compiled function.
    ///
    /// With the process-wide [`confllvm_obs::recorder`] enabled, each pass
    /// records a `compiler`-layer span carrying its change count, the
    /// instruction-stream size (instructions touched) and how many check
    /// sites the pass deleted.  The spans only read the function, so traced
    /// and untraced pipelines produce identical code.
    pub fn run(&self, mf: &mut CompiledFunction, cx: &mut MachineCtx) -> MPipelineReport {
        let rec = confllvm_obs::recorder();
        let mut report = MPipelineReport::default();
        for p in &self.passes {
            let checks_before = mf.check_sites.len();
            let mut span = rec.span("compiler", p.name());
            let changes = p.run(mf, cx);
            if span.active() {
                span.attr("layer", "machine");
                span.attr("changes", changes);
                span.attr("insts", mf.insts.len());
                span.attr(
                    "checks_deleted",
                    checks_before.saturating_sub(mf.check_sites.len()),
                );
            }
            report.per_pass.push((p.name(), changes));
        }
        report
    }
}

// ---------------------------------------------------------------------------
// instruction stream surgery
// ---------------------------------------------------------------------------

/// Delete the given instruction indices, remapping labels, patches, check
/// sites and block spans.
fn delete_insts(mf: &mut CompiledFunction, dead: &BTreeSet<usize>) {
    if dead.is_empty() {
        return;
    }
    let removed_before = |idx: usize| dead.range(..idx).count();
    mf.insts = mf
        .insts
        .iter()
        .enumerate()
        .filter(|(i, _)| !dead.contains(i))
        .map(|(_, inst)| inst.clone())
        .collect();
    for l in &mut mf.labels {
        if *l != usize::MAX {
            *l -= removed_before(*l);
        }
    }
    for (idx, _) in &mut mf.patches {
        debug_assert!(!dead.contains(idx), "patched instructions are never dead");
        *idx -= removed_before(*idx);
    }
    mf.check_sites.retain(|s| !dead.contains(&s.lower));
    for s in &mut mf.check_sites {
        s.lower -= removed_before(s.lower);
        s.upper -= removed_before(s.upper);
    }
    for b in &mut mf.mblocks {
        b.start -= removed_before(b.start);
        b.term_start -= removed_before(b.term_start);
    }
}

/// Insert instructions at `at`, remapping all recorded indices.  A label
/// pointing exactly at `at` keeps pointing at the first inserted instruction
/// (jumps into the block must execute hoisted code).
fn insert_insts(mf: &mut CompiledFunction, at: usize, new: Vec<MInst>) {
    let n = new.len();
    if n == 0 {
        return;
    }
    mf.insts.splice(at..at, new);
    for l in &mut mf.labels {
        if *l != usize::MAX && *l > at {
            *l += n;
        }
    }
    for (idx, _) in &mut mf.patches {
        if *idx >= at {
            *idx += n;
        }
    }
    for s in &mut mf.check_sites {
        if s.lower >= at {
            s.lower += n;
            s.upper += n;
        }
    }
    for b in &mut mf.mblocks {
        if b.start > at {
            b.start += n;
        }
        if b.term_start >= at {
            b.term_start += n;
        }
    }
}

/// The half-open instruction ranges of each block, in emission order.
fn block_ranges(mf: &CompiledFunction) -> Vec<(BlockId, usize, usize)> {
    let mut ranges = Vec::with_capacity(mf.mblocks.len());
    for (i, b) in mf.mblocks.iter().enumerate() {
        let end = mf
            .mblocks
            .get(i + 1)
            .map(|n| n.start)
            .unwrap_or(mf.insts.len());
        ranges.push((b.id, b.start, end));
    }
    ranges
}

fn is_call(inst: &MInst) -> bool {
    matches!(
        inst,
        MInst::CallDirect { .. } | MInst::CallReg { .. } | MInst::CallExternal { .. }
    )
}

// ---------------------------------------------------------------------------
// the passes
// ---------------------------------------------------------------------------

struct SkipStackChecks;

impl MachinePass for SkipStackChecks {
    fn name(&self) -> &'static str {
        "mpx-skip-stack-checks"
    }

    fn description(&self) -> &'static str {
        "drop checks on rsp-relative frame accesses (justified by _chkstk)"
    }

    fn run(&self, mf: &mut CompiledFunction, _cx: &mut MachineCtx) -> usize {
        let mut dead = BTreeSet::new();
        for s in &mf.check_sites {
            if s.kind == CheckKind::Stack {
                dead.insert(s.lower);
                dead.insert(s.upper);
            }
        }
        let removed = dead.len() / 2;
        delete_insts(mf, &dead);
        removed
    }
}

struct FoldDisplacements;

impl MachinePass for FoldDisplacements {
    fn name(&self) -> &'static str {
        "mpx-fold-displacements"
    }

    fn description(&self) -> &'static str {
        "narrow checks of [base+disp] to [base], absorbed by the guard areas"
    }

    fn run(&self, mf: &mut CompiledFunction, cx: &mut MachineCtx) -> usize {
        let mut changed = 0;
        for s in &mut mf.check_sites {
            if s.kind != CheckKind::User || (s.disp as i64).abs() >= GUARD {
                continue;
            }
            if s.disp != 0 {
                for idx in [s.lower, s.upper] {
                    if let MInst::BndCheck { mem, .. } = &mut mf.insts[idx] {
                        mem.disp = 0;
                    }
                }
                s.disp = 0;
                changed += 1;
            }
        }
        cx.folded = true;
        changed
    }
}

struct CoalesceChecks;

impl MachinePass for CoalesceChecks {
    fn name(&self) -> &'static str {
        "mpx-coalesce-checks"
    }

    fn description(&self) -> &'static str {
        "drop re-checks of an already-checked address within a basic block"
    }

    fn run_after(&self) -> &'static [&'static str] {
        &["mpx-skip-stack-checks", "mpx-fold-displacements"]
    }

    fn run(&self, mf: &mut CompiledFunction, cx: &mut MachineCtx) -> usize {
        if mf.check_sites.is_empty() {
            return 0;
        }
        let site_by_lower: HashMap<usize, usize> = mf
            .check_sites
            .iter()
            .enumerate()
            .map(|(i, s)| (s.lower, i))
            .collect();
        let mut dead = BTreeSet::new();
        for (_, start, end) in block_ranges(mf) {
            let mut checked: HashSet<CheckKey> = HashSet::new();
            for idx in start..end {
                if is_call(&mf.insts[idx]) {
                    checked.clear();
                    continue;
                }
                if let Some(&si) = site_by_lower.get(&idx) {
                    let site = &mf.check_sites[si];
                    if site.kind != CheckKind::User {
                        continue;
                    }
                    if let Some(key) = cx.key_of_site(site) {
                        if !checked.insert(key) {
                            dead.insert(site.lower);
                            dead.insert(site.upper);
                        }
                    }
                }
            }
        }
        let removed = dead.len() / 2;
        delete_insts(mf, &dead);
        removed
    }
}

struct HoistChecks;

impl MachinePass for HoistChecks {
    fn name(&self) -> &'static str {
        "mpx-hoist-checks"
    }

    fn description(&self) -> &'static str {
        "check loop-invariant bases once in the preheader"
    }

    fn run_after(&self) -> &'static [&'static str] {
        &[
            "mpx-skip-stack-checks",
            "mpx-fold-displacements",
            "mpx-coalesce-checks",
        ]
    }

    fn requires(&self) -> &'static [&'static str] {
        // Hoisting only *adds* checks; the elimination pass that makes the
        // in-loop ones redundant must follow, or the pipeline is a net loss.
        &["mpx-cross-block-elim"]
    }

    fn run(&self, mf: &mut CompiledFunction, cx: &mut MachineCtx) -> usize {
        if mf.check_sites.is_empty() || cx.opts.scheme != Scheme::Mpx {
            return 0;
        }
        let f = cx.f;
        let doms = dominators(f);
        let loops = natural_loops(f, &doms);
        if loops.is_empty() {
            return 0;
        }
        // Defining block of every value (parameters live in the entry).
        let mut def_block: HashMap<ValueId, BlockId> =
            f.params.iter().map(|p| (*p, f.entry())).collect();
        for b in &f.blocks {
            for inst in &b.insts {
                if let Some(d) = inst.def() {
                    def_block.insert(d, b.id);
                }
            }
        }
        let blocks_with_calls: HashSet<BlockId> = f
            .blocks
            .iter()
            .filter(|b| b.insts.iter().any(Inst::is_call))
            .map(|b| b.id)
            .collect();

        let mut hoisted_total = 0usize;
        // Keys already hoisted into an enclosing loop, with that loop's body.
        let mut enclosing: Vec<(HashSet<BlockId>, CheckKey)> = Vec::new();
        for l in &loops {
            let Some(preheader) = l.preheader else {
                continue;
            };
            if l.body.iter().any(|b| blocks_with_calls.contains(b)) {
                // A call clobbers the bound registers conservatively: hoisted
                // availability would not survive an iteration.
                continue;
            }
            let mut keys: BTreeSet<CheckKey> = BTreeSet::new();
            for site in &mf.check_sites {
                if site.kind != CheckKind::User || !l.body.contains(&site.block) {
                    continue;
                }
                // Profitability: only checks that execute on every complete
                // iteration are worth paying for up front.
                if !l.latches.iter().all(|&t| doms.dominates(site.block, t)) {
                    continue;
                }
                let Some(key) = cx.key_of_site(site) else {
                    continue;
                };
                // Safety: the hoisted check runs even when the loop is never
                // entered (zero-trip), so it must be provably unable to
                // fault.  That restricts hoisting to bases that are
                // in-region by construction — global addresses and alloca
                // (stack) addresses, whose folded displacement the guard
                // areas absorb.  Arbitrary loop-invariant pointer values
                // (e.g. heap pointers held in registers) must NOT be
                // speculated: an out-of-region pointer guarded by a false
                // loop condition would turn a clean exit into a fault.
                let invariant = match key.base {
                    BaseSym::Global(_) => true,
                    BaseSym::Val(v) => {
                        cx.frame.alloca(v).is_some()
                            && match def_block.get(&v) {
                                Some(db) => !l.body.contains(db) && doms.dominates(*db, preheader),
                                None => false,
                            }
                    }
                };
                if !invariant {
                    continue;
                }
                if enclosing
                    .iter()
                    .any(|(body, k)| *k == key && body.contains(&l.header))
                {
                    continue;
                }
                keys.insert(key);
            }
            if keys.is_empty() {
                continue;
            }
            let mut new_insts: Vec<MInst> = Vec::new();
            let mut new_keys: Vec<CheckKey> = Vec::new();
            let at = mf
                .mblocks
                .iter()
                .find(|b| b.id == preheader)
                .map(|b| b.term_start);
            let Some(at) = at else { continue };
            for key in keys {
                let mat = match key.base {
                    BaseSym::Global(g) => vec![MInst::MovGlobal {
                        dst: SCRATCH2,
                        index: g,
                    }],
                    BaseSym::Val(v) => {
                        materialize_value(cx.frame, cx.opts, &cx.layout, v, SCRATCH2)
                    }
                };
                let bnd = if key.taint == Taint::Private {
                    BndReg::Bnd1
                } else {
                    BndReg::Bnd0
                };
                let mem = MemOperand::base_disp(SCRATCH2, key.disp);
                let lower_at = at + new_insts.len() + mat.len();
                new_insts.extend(mat);
                new_insts.push(MInst::BndCheck {
                    bnd,
                    mem: mem.clone(),
                    upper: false,
                });
                new_insts.push(MInst::BndCheck {
                    bnd,
                    mem,
                    upper: true,
                });
                let (base_val, global) = match key.base {
                    BaseSym::Val(v) => (Some(v), None),
                    BaseSym::Global(g) => (None, Some(g)),
                };
                mf.check_sites.push(CheckSite {
                    lower: lower_at,
                    upper: lower_at + 1,
                    kind: CheckKind::User,
                    block: preheader,
                    base_val,
                    global,
                    disp: key.disp,
                    taint: key.taint,
                });
                new_keys.push(key);
                enclosing.push((l.body.clone(), key));
                hoisted_total += 1;
            }
            // Register the new sites *before* the shift, then insert: the
            // freshly pushed sites already carry post-insertion indices, so
            // exclude them from remapping by inserting first... instead we
            // simply account for the shift by inserting before remapping
            // happens. `insert_insts` shifts every site at or after `at`,
            // including the ones just pushed — compensate by subtracting.
            let pushed = new_keys.len();
            let total = new_insts.len();
            insert_insts(mf, at, new_insts);
            let n = mf.check_sites.len();
            for s in &mut mf.check_sites[n - pushed..] {
                s.lower -= total;
                s.upper -= total;
            }
            cx.hoisted.entry(preheader).or_default().extend(new_keys);
        }
        hoisted_total
    }
}

struct CrossBlockElim;

/// The forward availability analysis: which check keys are guaranteed to
/// have been checked on every path into a block.
struct AvailChecks<'c, 'a> {
    cx: &'c MachineCtx<'a>,
    hoisted: HashMap<BlockId, Vec<CheckKey>>,
}

impl ForwardTransfer for AvailChecks<'_, '_> {
    type Fact = MustSet<CheckKey>;

    fn transfer(&self, f: &Function, block: BlockId, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        for inst in &f.block(block).insts {
            if inst.is_call() {
                // Calls conservatively clobber the bound registers.
                out = MustSet::empty();
                continue;
            }
            match inst {
                Inst::Load { addr, region, .. } => {
                    if let Some(k) = self.cx.key_of_addr(*addr, *region) {
                        out.insert(k);
                    }
                }
                Inst::Store { addr, region, .. } => {
                    if let Some(k) = self.cx.key_of_addr(*addr, *region) {
                        out.insert(k);
                    }
                }
                _ => {}
            }
            if let Some(d) = inst.def() {
                out.retain(|k| k.base != BaseSym::Val(d));
            }
        }
        if let Some(keys) = self.hoisted.get(&block) {
            for k in keys {
                out.insert(*k);
            }
        }
        out
    }
}

impl MachinePass for CrossBlockElim {
    fn name(&self) -> &'static str {
        "mpx-cross-block-elim"
    }

    fn description(&self) -> &'static str {
        "drop checks available on every CFG path and along the code layout"
    }

    fn run_after(&self) -> &'static [&'static str] {
        &[
            "mpx-skip-stack-checks",
            "mpx-fold-displacements",
            "mpx-coalesce-checks",
            "mpx-hoist-checks",
        ]
    }

    fn run(&self, mf: &mut CompiledFunction, cx: &mut MachineCtx) -> usize {
        if mf.check_sites.is_empty() {
            return 0;
        }
        let transfer = AvailChecks {
            cx,
            hoisted: cx.hoisted.clone(),
        };
        let avail_in = solve_forward(cx.f, &transfer, MustSet::empty());

        // ConfVerify scans each procedure linearly: an elimination is only
        // verifiable if the providing check also precedes the access in the
        // code layout with no intervening call or slot overwrite.  Track that
        // linear availability in lock-step with the CFG facts.
        let slot_owner: HashMap<i32, ValueId> = cx
            .frame
            .slots
            .iter()
            .map(|(v, slot)| {
                let disp = FrameLayout::slot_disp(
                    *slot,
                    cx.opts.split_stacks,
                    cx.layout.private_stack_offset(),
                );
                (disp, *v)
            })
            .collect();
        let site_by_lower: HashMap<usize, usize> = mf
            .check_sites
            .iter()
            .enumerate()
            .map(|(i, s)| (s.lower, i))
            .collect();

        let mut linear: HashSet<CheckKey> = HashSet::new();
        let mut dead = BTreeSet::new();
        for (bid, start, end) in block_ranges(mf) {
            let mut avail: HashSet<CheckKey> = avail_in
                .get(&bid)
                .map(|m| m.as_concrete())
                .unwrap_or_default();
            for idx in start..end {
                let inst = &mf.insts[idx];
                if is_call(inst) {
                    avail.clear();
                    linear.clear();
                    continue;
                }
                if let MInst::Store { mem, .. } = inst {
                    if mem.is_stack_relative() {
                        if let Some(v) = slot_owner.get(&mem.disp) {
                            avail.retain(|k| k.base != BaseSym::Val(*v));
                            linear.retain(|k| k.base != BaseSym::Val(*v));
                        }
                    }
                }
                if let Some(&si) = site_by_lower.get(&idx) {
                    let site = &mf.check_sites[si];
                    if site.kind != CheckKind::User {
                        continue;
                    }
                    let Some(key) = cx.key_of_site(site) else {
                        continue;
                    };
                    // Alloca-materialised bases verify through the chkstk
                    // offset rule; everything else through slot or global
                    // provenance.
                    let verifiable = match key.base {
                        BaseSym::Global(_) => true,
                        BaseSym::Val(v) => cx.frame.alloca(v).is_none() || cx.opts.emit_chkstk,
                    };
                    if verifiable && avail.contains(&key) && linear.contains(&key) {
                        dead.insert(site.lower);
                        dead.insert(site.upper);
                    } else {
                        avail.insert(key);
                        linear.insert(key);
                    }
                }
            }
        }
        let removed = dead.len() / 2;
        delete_insts(mf, &dead);
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_parsing_validates_names_and_constraints() {
        assert!(MachinePipeline::parse("").unwrap().pass_names().is_empty());
        let full = MachinePipeline::parse(crate::options::PIPELINE_MPX_FULL).unwrap();
        assert_eq!(full.pass_names().len(), 5);
        assert!(MachinePipeline::parse("mpx-make-fast").is_err());
        // Hoisting without the elimination pass is rejected.
        let err = MachinePipeline::parse("mpx-hoist-checks").unwrap_err();
        assert!(err.message.contains("requires"), "{}", err.message);
        // Elimination after hoisting is fine; the reverse order is not.
        assert!(MachinePipeline::parse("mpx-hoist-checks,mpx-cross-block-elim").is_ok());
        let err = MachinePipeline::parse("mpx-cross-block-elim,mpx-hoist-checks").unwrap_err();
        assert!(err.message.contains("after"), "{}", err.message);
    }
}
