//! Linking: assemble compiled functions into one program, resolve labels and
//! call targets to code-word offsets, choose the magic prefixes post-link and
//! patch every magic-dependent word (Section 6).

use std::collections::HashMap;

use confllvm_ir::Module;
use confllvm_machine::program::{ExternSpec, FuncSym, GlobalSpec};
use confllvm_machine::{
    encoded_len, find_unique_prefixes, MInst, MagicPrefixes, Program, Scheme, Taint,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::isel::{compile_function, CodegenError, MagicPatch};
use crate::options::CodegenOptions;

/// Statistics about the produced code, used by the evaluation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct CodegenReport {
    pub functions: usize,
    pub instructions: usize,
    pub code_words: u32,
    /// Bound checks remaining in the emitted code after the machine passes.
    pub bound_checks: usize,
    pub cfi_checks: usize,
    pub magic_words: usize,
    /// Check pairs removed by the machine pipeline (skip-stack, coalescing
    /// and cross-block elimination together).
    pub checks_eliminated: usize,
    /// Check pairs inserted into loop preheaders by `mpx-hoist-checks`.
    pub checks_hoisted: usize,
    /// How many candidate prefixes were tried before a unique one was found.
    pub prefix_attempts: usize,
}

/// Compile and link a whole IR module into a machine [`Program`].
pub fn compile_module(
    module: &Module,
    opts: &CodegenOptions,
) -> Result<(Program, CodegenReport), CodegenError> {
    compile_module_with_entry(module, opts, "main")
}

/// Like [`compile_module`] but with an explicit entry function name.
pub fn compile_module_with_entry(
    module: &Module,
    opts: &CodegenOptions,
    entry: &str,
) -> Result<(Program, CodegenReport), CodegenError> {
    let func_index: HashMap<String, usize> = module
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();
    if !func_index.contains_key(entry) {
        return Err(CodegenError {
            message: format!("entry function `{entry}` is not defined"),
        });
    }

    // Module-level compile span (closes when this function returns, so it
    // parents the per-pass spans the pipeline records on this thread).
    let mut obs_span = confllvm_obs::recorder().span("compiler", "codegen.module");

    // 1. Compile every function and run the machine pass pipeline over it.
    let pipeline = crate::mpass::MachinePipeline::parse(&opts.passes)?;
    let mut pass_report = crate::mpass::MPipelineReport::default();
    let mut compiled = Vec::new();
    for f in &module.functions {
        let mut cf = compile_function(module, f, opts, &func_index)?;
        let frame = cf.frame.clone();
        let mut cx = crate::mpass::MachineCtx::new(module, f, &frame, opts);
        pass_report.merge(&pipeline.run(&mut cf, &mut cx));
        cf.bound_checks = cf
            .insts
            .iter()
            .filter(|i| matches!(i, MInst::BndCheck { .. }))
            .count();
        compiled.push(cf);
    }

    // 2. Concatenate, remembering per-function instruction ranges.
    let mut insts: Vec<MInst> = Vec::new();
    let mut patches: Vec<(usize, MagicPatch)> = Vec::new();
    let mut func_ranges: Vec<(usize, usize)> = Vec::new(); // [start, end) inst indices
    for cf in &compiled {
        let start = insts.len();
        for (idx, patch) in &cf.patches {
            patches.push((start + idx, *patch));
        }
        insts.extend(cf.insts.iter().cloned());
        func_ranges.push((start, insts.len()));
    }

    // 3. Word offsets for every instruction.
    let mut word_of: Vec<u32> = Vec::with_capacity(insts.len());
    let mut w = 0u32;
    for inst in &insts {
        word_of.push(w);
        w += encoded_len(inst);
    }
    let total_words = w;

    // 4. Function symbols.
    let mut functions = Vec::new();
    for (fi, cf) in compiled.iter().enumerate() {
        let (start, _) = func_ranges[fi];
        let magic_word = if opts.cfi { Some(word_of[start]) } else { None };
        let entry_inst = if opts.cfi { start + 1 } else { start };
        functions.push(FuncSym {
            name: cf.name.clone(),
            magic_word,
            entry_word: word_of[entry_inst],
            arg_taints: cf.arg_taints,
            ret_taint: cf.ret_taint,
        });
    }

    // 5. Resolve jumps (local labels), direct calls and function references.
    let mut resolved = insts.clone();
    for (fi, cf) in compiled.iter().enumerate() {
        let (start, end) = func_ranges[fi];
        let label_word = |label: u32| -> u32 {
            let local_idx = cf.labels[label as usize];
            word_of[start + local_idx]
        };
        for inst in &mut resolved[start..end] {
            match inst {
                MInst::Jmp { target } => *target = label_word(*target),
                MInst::Jcc { target, .. } => *target = label_word(*target),
                MInst::CallDirect { target } => {
                    let callee = *target as usize;
                    *target = functions[callee].entry_word;
                }
                MInst::MovFunc { dst, index } => {
                    // Function pointers point at the callee's magic word when
                    // CFI is on (the indirect-call check reads it and then
                    // skips it), at its entry otherwise.
                    let callee = *index as usize;
                    let word = functions[callee]
                        .magic_word
                        .unwrap_or(functions[callee].entry_word);
                    *inst = MInst::MovImm {
                        dst: *dst,
                        imm: word as i64,
                    };
                }
                _ => {}
            }
        }
    }

    // 6. Choose magic prefixes and patch the magic-dependent words, retrying
    //    (with new random prefixes) in the astronomically unlikely event that
    //    a prefix also appears in an unrelated code word.
    let seed = opts.prefix_seed.unwrap_or(0x5eed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attempts = 0usize;
    let (final_insts, prefixes) = loop {
        attempts += 1;
        // Candidate prefixes are drawn against the words we have so far
        // (before patching) — exactly the paper's "generate random bit
        // sequences and check for uniqueness" loop.
        let candidate_words: Vec<u64> = {
            let mut ws = Vec::with_capacity(total_words as usize);
            for inst in &resolved {
                ws.extend(confllvm_machine::encode_inst(inst));
            }
            ws
        };
        let prefixes = find_unique_prefixes(&mut rng, &candidate_words);
        let mut patched = resolved.clone();
        for (idx, patch) in &patches {
            match patch {
                MagicPatch::CallMagic { args, ret } => {
                    patched[*idx] = MInst::MagicWord {
                        value: prefixes.call_word(*args, *ret),
                    };
                }
                MagicPatch::RetMagic { ret } => {
                    patched[*idx] = MInst::MagicWord {
                        value: prefixes.ret_word(*ret),
                    };
                }
                MagicPatch::NotCallMagic { args, ret } => {
                    if let MInst::MovImm { imm, .. } = &mut patched[*idx] {
                        *imm = !(prefixes.call_word(*args, *ret)) as i64;
                    }
                }
                MagicPatch::NotRetMagic { ret } => {
                    if let MInst::MovImm { imm, .. } = &mut patched[*idx] {
                        *imm = !(prefixes.ret_word(*ret)) as i64;
                    }
                }
            }
        }
        // Verify uniqueness in the final image: no word other than the magic
        // words themselves may carry either prefix.
        let magic_positions: std::collections::HashSet<u32> = patches
            .iter()
            .filter(|(_, p)| {
                matches!(
                    p,
                    MagicPatch::CallMagic { .. } | MagicPatch::RetMagic { .. }
                )
            })
            .map(|(idx, _)| word_of[*idx])
            .collect();
        let mut ok = true;
        let mut word_idx = 0u32;
        for inst in &patched {
            for wv in confllvm_machine::encode_inst(inst) {
                let is_magic_pos = magic_positions.contains(&word_idx);
                if !is_magic_pos && (prefixes.is_call_word(wv) || prefixes.is_ret_word(wv)) {
                    ok = false;
                }
                word_idx += 1;
            }
        }
        if ok {
            break (patched, prefixes);
        }
        if attempts > 64 {
            return Err(CodegenError {
                message: "could not find unique magic prefixes".to_string(),
            });
        }
    };

    let entry_function = func_index[entry];
    let globals: Vec<GlobalSpec> = module
        .globals
        .iter()
        .map(|g| GlobalSpec {
            name: g.name.clone(),
            size: g.size,
            taint: g.taint,
            init: g.init.clone(),
        })
        .collect();
    let externs: Vec<ExternSpec> = module
        .externs
        .iter()
        .map(|e| ExternSpec {
            name: e.name.clone(),
            param_taints: e.param_taints.clone(),
            param_pointee_taints: e.param_pointee_taints.clone(),
            param_is_pointer: e.param_is_pointer.clone(),
            ret_taint: e.ret_taint,
            has_ret_value: e.has_ret_value,
        })
        .collect();

    let report = CodegenReport {
        functions: compiled.len(),
        instructions: final_insts.len(),
        code_words: total_words,
        bound_checks: compiled.iter().map(|c| c.bound_checks).sum(),
        cfi_checks: compiled.iter().map(|c| c.cfi_checks).sum(),
        checks_eliminated: pass_report.changes_of("mpx-skip-stack-checks")
            + pass_report.changes_of("mpx-coalesce-checks")
            + pass_report.changes_of("mpx-cross-block-elim"),
        checks_hoisted: pass_report.changes_of("mpx-hoist-checks"),
        magic_words: patches
            .iter()
            .filter(|(_, p)| {
                matches!(
                    p,
                    MagicPatch::CallMagic { .. } | MagicPatch::RetMagic { .. }
                )
            })
            .count(),
        prefix_attempts: attempts,
    };
    if obs_span.active() {
        obs_span.attr("functions", report.functions);
        obs_span.attr("instructions", report.instructions);
        obs_span.attr("bound_checks", report.bound_checks);
        obs_span.attr("checks_eliminated", report.checks_eliminated);
        obs_span.attr("checks_hoisted", report.checks_hoisted);
    }

    let program = Program {
        name: module.name.clone(),
        insts: final_insts,
        functions,
        globals,
        externs,
        entry_function,
        prefixes,
        scheme: opts.scheme,
        cfi: opts.cfi,
        separate_trusted_memory: opts.separate_trusted_memory,
        split_stacks: opts.split_stacks,
    };
    Ok((program, report))
}

/// Ensure the public taint type is re-exported for downstream users building
/// expectations about magic words.
pub fn ret_taint_of(program: &Program, function: &str) -> Option<Taint> {
    program.function(function).map(|f| f.ret_taint)
}

/// Convenience: resolve prefixes for tests.
pub fn prefixes_of(program: &Program) -> MagicPrefixes {
    program.prefixes
}

/// Scheme helper for tests/reports.
pub fn scheme_of(program: &Program) -> Scheme {
    program.scheme
}
