//! Stack frame layout with lock-step public/private frames (Section 3).
//!
//! Every IR value gets a home slot; `Alloca`s get a byte range.  A slot's
//! taint decides which of the two lock-step frames it lives in: public slots
//! are addressed `[rsp + off]`, private slots `[rsp + off + OFFSET]` (MPX
//! scheme) or `gs:[esp + off]` (segmentation scheme).  Both frames are the
//! same size and move together with a single `sub rsp, frame_size`.

use std::collections::HashMap;

use confllvm_ir::{Function, Inst, ValueId};
use confllvm_minic::Taint;

use crate::options::CodegenOptions;

/// A value's home slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Offset from rsp (identical in both frames thanks to lock-step layout).
    pub offset: i32,
    /// Which frame the slot lives in.
    pub taint: Taint,
}

/// An `Alloca`'s reserved byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocaArea {
    pub offset: i32,
    pub size: u32,
    pub taint: Taint,
}

/// The complete frame layout of one function.
#[derive(Debug, Clone, Default)]
pub struct FrameLayout {
    /// Home slots for scalar values.
    pub slots: HashMap<ValueId, Slot>,
    /// Byte ranges for allocas (keyed by the alloca's result value).
    pub allocas: HashMap<ValueId, AllocaArea>,
    /// Bytes reserved at the bottom of the frame for outgoing stack
    /// arguments (arguments beyond the four register arguments).
    pub outgoing_args_bytes: u32,
    /// Total frame size in bytes (16-byte aligned).
    pub frame_size: u32,
}

impl FrameLayout {
    /// Compute the frame layout for a function.
    pub fn build(f: &Function, opts: &CodegenOptions) -> FrameLayout {
        let mut layout = FrameLayout::default();

        // Outgoing argument area: the widest call decides.
        let mut max_extra_args = 0usize;
        for b in &f.blocks {
            for inst in &b.insts {
                let nargs = match inst {
                    Inst::Call { args, .. }
                    | Inst::CallExtern { args, .. }
                    | Inst::CallIndirect { args, .. } => args.len(),
                    _ => 0,
                };
                max_extra_args = max_extra_args.max(nargs.saturating_sub(4));
            }
        }
        layout.outgoing_args_bytes = (max_extra_args as u32) * 8;

        let mut offset = layout.outgoing_args_bytes as i32;
        let reserve = |bytes: u32, offset: &mut i32| {
            let off = *offset;
            let aligned = bytes.div_ceil(8) * 8;
            *offset += aligned as i32;
            off
        };

        // A slot's frame is chosen by the value's inferred taint; when the
        // stacks are not split everything goes to the (single public) frame.
        let frame_taint = |t: Taint| if opts.split_stacks { t } else { Taint::Public };

        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Alloca { dst, size, .. } = inst {
                    let taint = frame_taint(f.value_info(*dst).pointee_taint);
                    let off = reserve((*size).max(8) as u32, &mut offset);
                    layout.allocas.insert(
                        *dst,
                        AllocaArea {
                            offset: off,
                            size: (*size).max(8) as u32,
                            taint,
                        },
                    );
                } else if let Some(dst) = inst.def() {
                    let taint = frame_taint(f.value_info(dst).taint);
                    let off = reserve(8, &mut offset);
                    layout.slots.insert(dst, Slot { offset: off, taint });
                }
            }
        }
        // Parameters also need home slots (they are values 0..nparams and are
        // never defined by an instruction).
        for (i, p) in f.params.iter().enumerate() {
            let taint = frame_taint(f.param_taints[i]);
            let off = reserve(8, &mut offset);
            layout.slots.insert(*p, Slot { offset: off, taint });
        }

        layout.frame_size = (offset as u32).div_ceil(16) * 16;
        layout
    }

    /// Slot of a scalar value (panics for allocas — those use
    /// [`FrameLayout::alloca`]).
    pub fn slot(&self, v: ValueId) -> Option<Slot> {
        self.slots.get(&v).copied()
    }

    /// The rsp-relative displacement a slot is addressed with under the MPX
    /// scheme: private slots live `private_stack_offset` above the public
    /// lock-step frame.  Machine passes use this to map stack stores back to
    /// the value whose home they overwrite.
    pub fn slot_disp(slot: Slot, split_stacks: bool, private_stack_offset: i64) -> i32 {
        if slot.taint == Taint::Private && split_stacks {
            slot.offset + private_stack_offset as i32
        } else {
            slot.offset
        }
    }

    pub fn alloca(&self, v: ValueId) -> Option<AllocaArea> {
        self.allocas.get(&v).copied()
    }

    /// Offset (from the callee's rsp, after its prologue) of incoming stack
    /// argument `i` (i >= 4): skip the frame and the pushed return address.
    pub fn incoming_stack_arg_offset(&self, i: usize) -> i32 {
        self.frame_size as i32 + 8 + ((i - 4) as i32) * 8
    }

    /// Offset (from the caller's rsp) of outgoing stack argument `i`.
    pub fn outgoing_stack_arg_offset(i: usize) -> i32 {
        ((i - 4) as i32) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confllvm_ir::{infer, lower, InferOptions};
    use confllvm_minic::{parse, Sema};

    fn build_frame(src: &str, fname: &str, opts: &CodegenOptions) -> (Function, FrameLayout) {
        let prog = parse(src).unwrap();
        let sema = Sema::analyze(&prog).unwrap();
        let mut m = lower(&prog, &sema, "t").unwrap();
        infer(&mut m, InferOptions::default()).unwrap();
        let f = m.function(fname).unwrap().clone();
        let layout = FrameLayout::build(&f, opts);
        (f, layout)
    }

    #[test]
    fn private_buffers_go_to_the_private_frame() {
        let src = "
            extern void read_passwd(char *u, private char *p, int n);
            private int f(char *u) {
                char pw[64];
                char pubbuf[32];
                read_passwd(u, pw, 64);
                return pw[0] + pubbuf[0];
            }
        ";
        let (f, layout) = build_frame(src, "f", &CodegenOptions::mpx());
        let mut private_allocas = 0;
        let mut public_allocas = 0;
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Alloca { dst, .. } = inst {
                    match layout.alloca(*dst).unwrap().taint {
                        Taint::Private => private_allocas += 1,
                        Taint::Public => public_allocas += 1,
                    }
                }
            }
        }
        assert!(private_allocas >= 1, "pw must be on the private stack");
        assert!(public_allocas >= 1, "pubbuf must stay on the public stack");
    }

    #[test]
    fn unsplit_stacks_place_everything_public() {
        let src = "
            extern void read_passwd(char *u, private char *p, int n);
            private int f(char *u) { char pw[64]; read_passwd(u, pw, 64); return pw[0]; }
        ";
        let mut opts = CodegenOptions::mpx();
        opts.split_stacks = false;
        let (_f, layout) = build_frame(src, "f", &opts);
        assert!(layout.allocas.values().all(|a| a.taint == Taint::Public));
        assert!(layout.slots.values().all(|s| s.taint == Taint::Public));
    }

    #[test]
    fn frame_is_16_byte_aligned_and_covers_outgoing_args() {
        let src = "
            int callee(int a, int b, int c, int d, int e, int f) { return a + f; }
            int caller() { return callee(1, 2, 3, 4, 5, 6); }
        ";
        let (_f, layout) = build_frame(src, "caller", &CodegenOptions::baseline());
        assert_eq!(layout.frame_size % 16, 0);
        assert_eq!(layout.outgoing_args_bytes, 16);
        assert!(layout.frame_size >= 16);
    }

    #[test]
    fn slots_do_not_overlap() {
        let src = "int f(int a, int b) { int c = a + b; int d = c * 2; return d - a; }";
        let (_f, layout) = build_frame(src, "f", &CodegenOptions::segment());
        let mut ranges: Vec<(i32, i32)> = layout
            .slots
            .values()
            .map(|s| (s.offset, s.offset + 8))
            .chain(
                layout
                    .allocas
                    .values()
                    .map(|a| (a.offset, a.offset + a.size as i32)),
            )
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping slots: {w:?}");
        }
    }
}
