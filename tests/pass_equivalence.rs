//! Property tests for pass-pipeline correctness: every workload program must
//! behave *identically* when compiled with the full optimisation pipelines
//! (IR `const-fold,copy-prop,cse,dce` plus the full MPX machine pipeline
//! with cross-block check elimination and loop hoisting) and with everything
//! off — same exit code, same observable output, same taint verdict — and
//! ConfVerify must accept both binaries.

use confllvm_core::{compile, CompileOptions, Config};
use confllvm_vm::World;
use confllvm_workloads::{merkle, nginx, privado, run_workload_opts, spec};
use proptest::prelude::*;

/// The pipelines under comparison.
fn full_opts(entry: &str) -> CompileOptions {
    CompileOptions {
        config: Config::OurMpx,
        entry: entry.to_string(),
        ..Default::default()
    }
}

fn unopt_opts(entry: &str) -> CompileOptions {
    CompileOptions {
        config: Config::OurMpx,
        entry: entry.to_string(),
        optimize: false,
        machine_passes: Some(String::new()),
        ..Default::default()
    }
}

/// One equivalence check: compile + run a program both ways and compare
/// everything the paper cares about.
fn assert_equivalent(name: &str, source: &str, world: World, entry: &str, args: &[i64]) {
    let full = full_opts(entry);
    let unopt = unopt_opts(entry);

    // Identical taint verdicts: both accepted, agreeing on whether the
    // program touches private state at all (the inferred counts may differ —
    // CSE legitimately removes duplicate accesses).
    let full_compiled =
        compile(source, &full).unwrap_or_else(|e| panic!("{name}: full pipeline rejected: {e}"));
    let unopt_compiled =
        compile(source, &unopt).unwrap_or_else(|e| panic!("{name}: empty pipeline rejected: {e}"));
    assert_eq!(
        full_compiled.private_accesses > 0,
        unopt_compiled.private_accesses > 0,
        "{name}: pipelines disagree on private accesses"
    );

    // ConfVerify accepts both binaries.
    for (label, c) in [("full", &full_compiled), ("unopt", &unopt_compiled)] {
        confllvm_verify::verify(&c.binary()).unwrap_or_else(|errs| {
            panic!(
                "{name}: {label} binary failed to verify: {:?}",
                &errs[..1.min(errs.len())]
            )
        });
    }

    // Identical observable behaviour.
    let r_full = run_workload_opts(source, &full, world.clone(), args);
    let r_unopt = run_workload_opts(source, &unopt, world, args);
    assert_eq!(
        r_full.exit_code(),
        r_unopt.exit_code(),
        "{name}: exit codes differ"
    );
    assert_eq!(
        r_full.world.observable(),
        r_unopt.world.observable(),
        "{name}: observable outputs differ"
    );
    // The optimised build must never execute more checks than the naive one.
    assert!(
        r_full.result.checks_executed() <= r_unopt.result.checks_executed(),
        "{name}: full pipeline executed more checks"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn spec_kernels_are_pipeline_invariant(idx in 0usize..spec::KERNELS.len(), size in 2i64..5) {
        let kernel = spec::KERNELS[idx];
        assert_equivalent(kernel.name, kernel.source, World::new(), "run", &[size]);
    }

    #[test]
    fn servers_and_enclaves_are_pipeline_invariant(which in 0usize..3, scale in 1i64..3) {
        match which {
            0 => {
                let requests = scale as usize;
                assert_equivalent(
                    "nginx",
                    nginx::SOURCE,
                    nginx::world(requests, 512),
                    "serve",
                    &[requests as i64, 512],
                );
            }
            1 => assert_equivalent("privado", privado::SOURCE, privado::world(), "classify", &[1]),
            _ => {
                let blocks = scale;
                assert_equivalent(
                    "merkle",
                    merkle::SOURCE,
                    merkle::world(256),
                    "read_file_blocks",
                    &[blocks, 256],
                );
            }
        }
    }
}
