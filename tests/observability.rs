//! End-to-end properties of the observability layer:
//!
//! * **Redaction** — private `World` state (passwords, secret files) planted
//!   with a recognisable sentinel never reaches the emitted trace or metrics
//!   JSON.  The typed attribute layer makes this true by construction; debug
//!   builds additionally panic at the record site if a registered sentinel
//!   appears in any recorded string, so merely *finishing* the traced run is
//!   itself an assertion.
//! * **Zero perturbation** — serving the same deterministic streams with the
//!   recorder on and off produces byte-identical attacker-observable output,
//!   identical exit codes and identical simulated cycle counts.  Tracing
//!   only ever reads simulated state.
//! * **Coverage** — the trace of a compile + verify + serve run carries
//!   spans from all four instrumented layers.

use std::sync::Arc;

use confllvm_repro::core::{CompileOptions, Config};
use confllvm_repro::obs;
use confllvm_repro::server::{
    BinaryId, ExecMode, Registry, RequestGen, Server, ServerConfig, SessionSpec, SetupSpec,
    StreamKind, VerifyPolicy,
};
use confllvm_repro::workloads::{ldap, nginx};

/// Planted in every session's private state; ASCII so a plain substring
/// search over the exported JSON finds any leak.
const SENTINEL: &[u8] = b"TOP-SECRET-SENTINEL-0xB1D";

fn nginx_server() -> (Server, BinaryId) {
    let registry = Arc::new(Registry::new(VerifyPolicy::RequireVerified));
    let opts = CompileOptions {
        config: Config::OurSeg,
        entry: nginx::SETUP_ENTRY.to_string(),
        ..Default::default()
    };
    registry
        .deploy_source(
            "nginx",
            nginx::SOURCE,
            &opts,
            Some(SetupSpec::new(nginx::SETUP_ENTRY, &[])),
        )
        .expect("nginx deploys");
    let binary = registry.binary_id("nginx").unwrap();
    (Server::new(registry, ServerConfig::new()), binary)
}

fn ldap_server() -> (Server, BinaryId) {
    let registry = Arc::new(Registry::new(VerifyPolicy::RequireVerified));
    let opts = CompileOptions {
        config: Config::OurMpx,
        entry: ldap::SETUP_ENTRY.to_string(),
        ..Default::default()
    };
    registry
        .deploy_source(
            "ldap",
            &ldap::annotated_source(),
            &opts,
            Some(SetupSpec::new(ldap::SETUP_ENTRY, &[32])),
        )
        .expect("ldap deploys");
    let binary = registry.binary_id("ldap").unwrap();
    (Server::new(registry, ServerConfig::new()), binary)
}

fn nginx_sessions() -> Vec<SessionSpec> {
    (0..2u64)
        .map(|id| {
            let mut world = nginx::file_world(3, 256, id as u8);
            // Private state the request stream never asks for: if any of it
            // shows up anywhere, something leaked.
            world.add_secret_file("vault", SENTINEL);
            world.set_password("admin", SENTINEL);
            let requests = RequestGen::new(id).stream(
                StreamKind::NginxFiles {
                    files: 3,
                    response_size: 256,
                },
                4,
            );
            SessionSpec::new(id, world, requests)
        })
        .collect()
}

fn ldap_sessions() -> Vec<SessionSpec> {
    (0..2u64)
        .map(|id| {
            let mut world = confllvm_repro::vm::World::new();
            world.set_password("user", SENTINEL);
            let requests = RequestGen::new(100 + id).stream(
                StreamKind::LdapMix {
                    entries: 32,
                    hit_pct: 50,
                },
                4,
            );
            SessionSpec::new(id, world, requests)
        })
        .collect()
}

/// Deploy both workloads and serve their streams (pooled and cold, so both
/// request paths are exercised).  Returns everything the simulation lets an
/// attacker or an evaluator observe: the observable byte traces, the exit
/// codes, and the total simulated cycles.
fn compile_and_serve() -> (Vec<u8>, Vec<i64>, u64) {
    let (nginx_srv, nginx_bin) = nginx_server();
    let (ldap_srv, ldap_bin) = ldap_server();
    let n = nginx_srv
        .serve(nginx_bin, &nginx_sessions(), ExecMode::Pooled)
        .expect("nginx serves");
    let l = ldap_srv
        .serve(ldap_bin, &ldap_sessions(), ExecMode::Cold)
        .expect("ldap serves");
    let mut observable = n.observable();
    observable.extend_from_slice(&l.observable());
    let exit_codes: Vec<i64> = n
        .sessions
        .iter()
        .chain(&l.sessions)
        .flat_map(|s| s.exit_codes.iter().copied())
        .collect();
    (
        observable,
        exit_codes,
        n.metrics.total_cycles + l.metrics.total_cycles,
    )
}

#[test]
fn traced_runs_leak_nothing_and_perturb_nothing() {
    let rec = obs::recorder();
    rec.clear();
    rec.add_private_sentinel(SENTINEL);

    // Untraced baseline, then the identical run with the recorder on.  In
    // debug builds every recorded event is scanned against the registered
    // sentinel, so the traced run completing at all is already a redaction
    // assertion.
    let (obs_off, codes_off, cycles_off) = compile_and_serve();
    rec.set_enabled(true);
    let (obs_on, codes_on, cycles_on) = compile_and_serve();
    rec.set_enabled(false);

    assert_eq!(
        obs_off, obs_on,
        "tracing must not change the attacker-observable byte trace"
    );
    assert_eq!(codes_off, codes_on, "tracing must not change results");
    assert_eq!(
        cycles_off, cycles_on,
        "tracing must not change simulated cycle counts"
    );

    let snap = rec.snapshot();
    let trace = obs::chrome_trace_json(&snap);
    let metrics = obs::metrics_json(&snap);
    rec.clear_private_sentinels();
    rec.clear();

    // The sentinel is ASCII: a substring search over the full exports is a
    // complete leak check.
    let needle = std::str::from_utf8(SENTINEL).unwrap();
    assert!(
        !trace.contains(needle),
        "private sentinel leaked into the Chrome trace"
    );
    assert!(
        !metrics.contains(needle),
        "private sentinel leaked into the metrics JSON"
    );

    // The exports are well-formed and the trace covers every instrumented
    // layer: compile (compiler), deploy-time ConfVerify (verifier),
    // execution and snapshot/restore (vm), and the request path (server).
    let check = obs::validate_chrome_trace(&trace).expect("valid Chrome trace");
    let missing = check.missing_categories(&obs::LAYERS);
    assert!(missing.is_empty(), "layers missing from trace: {missing:?}");
    assert!(check.events > 0);
    obs::parse_json(&metrics).expect("valid metrics JSON");
}
