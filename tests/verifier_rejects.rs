//! Experiment E8: ConfVerify accepts ConfLLVM's output and rejects binaries
//! whose instrumentation has been tampered with — the property that removes
//! the compiler from the TCB (Section 5.2).

use confllvm_core::{compile_for, Config};
use confllvm_machine::{BndReg, MInst, Taint};
use confllvm_verify::{is_verifiable, verify};

const APP: &str = "
    extern void read_passwd(char *u, private char *p, int n);
    extern void encrypt(private char *src, char *dst, int n);
    extern int send(int fd, char *buf, int n);

    private int remember(private int x) { return x + 1; }

    private int scramble(private char *pw, int n) {
        int i;
        int acc = 0;
        for (i = 0; i < n; i = i + 1) {
            acc = acc + pw[i] * 31;
        }
        return remember(acc);
    }

    int main() {
        char user[8];
        user[0] = 'a'; user[1] = 0;
        char pw[16];
        read_passwd(user, pw, 16);
        private int digest = scramble(pw, 16);
        char out[16];
        encrypt(pw, out, 16);
        send(1, out, 16);
        return 0;
    }
";

#[test]
fn compiled_mpx_binary_passes_confverify() {
    let compiled = compile_for(APP, Config::OurMpx).unwrap();
    let binary = compiled.binary();
    assert!(is_verifiable(&binary));
    let report = verify(&binary).unwrap_or_else(|e| panic!("verification failed: {e:?}"));
    assert!(report.procedures >= 3);
    assert!(report.stores_checked > 0);
    assert!(report.returns_checked >= 3);
}

#[test]
fn compiled_segment_binary_passes_confverify() {
    let compiled = compile_for(APP, Config::OurSeg).unwrap();
    let report =
        verify(&compiled.binary()).unwrap_or_else(|e| panic!("verification failed: {e:?}"));
    assert!(report.procedures >= 3);
    assert!(report.indirect_calls_checked == 0);
}

#[test]
fn baseline_binary_is_not_verifiable() {
    let compiled = compile_for(APP, Config::Base).unwrap();
    assert!(!is_verifiable(&compiled.binary()));
}

/// Simulate a compiler bug: drop one MPX bound check.  The verifier must
/// notice the unchecked access.
#[test]
fn dropping_a_bound_check_is_rejected() {
    let compiled = compile_for(APP, Config::OurMpx).unwrap();
    let mut program = compiled.program.clone();
    // Drop every private-region bound check, as a buggy compiler might.  At
    // least one private access goes through a pointer loaded from memory (the
    // `pw[i]` reads in `scramble`), so the remaining `_chkstk`-based stack
    // reasoning cannot justify all of them.
    let mut dropped = 0;
    for inst in &mut program.insts {
        if matches!(
            inst,
            MInst::BndCheck {
                bnd: BndReg::Bnd1,
                ..
            }
        ) {
            *inst = MInst::Nop;
            dropped += 1;
        }
    }
    assert!(
        dropped > 0,
        "instrumented program must contain private-region checks"
    );
    let errs = verify(&program.encode()).unwrap_err();
    assert!(
        errs.iter().any(|e| e.message.contains("no bound check")),
        "expected an unchecked-access error, got {errs:?}"
    );
}

/// Simulate a malicious compiler: lie about a procedure's taints by flipping
/// the taint bits in its entry magic word.
#[test]
fn flipping_magic_taint_bits_is_rejected() {
    let compiled = compile_for(APP, Config::OurMpx).unwrap();
    let mut program = compiled.program.clone();
    let prefixes = program.prefixes;
    // `scramble` takes a private buffer and returns private data; claim that
    // everything is public instead.
    let scramble = program.function("scramble").unwrap().clone();
    let magic_word = scramble.magic_word.unwrap();
    let idx = program
        .word_offsets()
        .iter()
        .position(|w| *w == magic_word)
        .unwrap();
    program.insts[idx] = MInst::MagicWord {
        value: prefixes.call_word([Taint::Public; 4], Taint::Public),
    };
    let errs = verify(&program.encode()).unwrap_err();
    assert!(!errs.is_empty());
}

/// Smuggling a plain `ret` (bypassing the CFI expansion) must be rejected.
#[test]
fn plain_ret_is_rejected() {
    let compiled = compile_for(APP, Config::OurMpx).unwrap();
    let mut program = compiled.program.clone();
    // Replace the first JmpReg (the tail of a return expansion) with a plain
    // ret, as a buggy compiler might.
    let pos = program
        .insts
        .iter()
        .position(|i| matches!(i, MInst::JmpReg { .. }))
        .unwrap();
    program.insts[pos] = MInst::Ret;
    let errs = verify(&program.encode()).unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("plain ret")));
}

/// A store that writes a private register into public memory (the exact bug
/// class ConfLLVM prevents) must be flagged even if the rest of the
/// instrumentation is intact.
#[test]
fn private_store_to_public_memory_is_rejected() {
    let compiled = compile_for(APP, Config::OurMpx).unwrap();
    let mut program = compiled.program.clone();
    // Find a store into the private stack mirror (disp >= OFFSET) and
    // redirect it to the public frame by zeroing the displacement.
    let offset = confllvm_machine::MemoryLayout::new(
        program.scheme,
        program.split_stacks,
        program.separate_trusted_memory,
    )
    .private_stack_offset() as i32;
    let pos = program.insts.iter().position(|i| match i {
        MInst::Store { mem, .. } => mem.is_stack_relative() && mem.disp >= offset,
        _ => false,
    });
    let Some(pos) = pos else {
        // No private spill in this build — nothing to tamper with.
        return;
    };
    if let MInst::Store { mem, .. } = &mut program.insts[pos] {
        mem.disp -= offset;
    }
    let errs = verify(&program.encode()).unwrap_err();
    assert!(
        errs.iter().any(|e| e
            .message
            .contains("store of a private register into public")),
        "expected a store-taint error, got {errs:?}"
    );
}
