//! End-to-end tests of the serving layer (the paper's deployment model):
//! verify-then-load registration, multi-session request streams over pooled
//! VM instances, and the two-run observational-equivalence property — an
//! identical request stream served against different private state must be
//! indistinguishable on the attacker-observable channels.

use confllvm_repro::core::{compile_for, CompileOptions, Config};
use confllvm_repro::machine::{BndReg, MInst};
use std::sync::Arc;

use confllvm_repro::server::{
    BinaryId, ExecMode, RegisterError, Registry, Request, RequestGen, Server, ServerConfig,
    SessionSpec, SetupSpec, StreamKind, VerifyPolicy,
};
use confllvm_repro::vm::World;
use confllvm_repro::workloads::nginx;

/// An authentication service whose *public* behaviour is fully determined by
/// public inputs: the session's password is read and digested privately, and
/// only a constant banner plus a public per-request log line leave U.
const AUTH_SERVICE: &str = "
    extern void read_passwd(char *u, private char *p, int n);
    extern int send(int fd, char *buf, int n);
    extern int log_write(char *buf, int n);

    char banner[8];
    char table[512];

    int setup() {
        int i;
        banner[0] = 79; banner[1] = 75; banner[2] = 10;
        // Session key-schedule stand-in: the startup work a cold request
        // re-pays and a pooled instance snapshots away.
        for (i = 0; i < 512; i = i + 1) { table[i] = (i * 7) % 251; }
        return 1;
    }

    private int digest(private char *pw, int n) {
        int i;
        int acc = 0;
        for (i = 0; i < n; i = i + 1) { acc = acc + pw[i] * 31; }
        return acc;
    }

    int handle_login(int attempt) {
        char user[8];
        user[0] = 117; user[1] = 0;
        char pw[32];
        read_passwd(user, pw, 32);
        private int d = digest(pw, 32);
        send(1, banner, 3);
        char line[4];
        int digit = attempt % 10;
        line[0] = 76;
        line[1] = 48 + digit;
        line[2] = 10;
        log_write(line, 3);
        return attempt;
    }

    int main() { return handle_login(0); }
";

fn auth_server(config: Config) -> (Server, BinaryId) {
    let registry = Arc::new(Registry::new(VerifyPolicy::RequireVerified));
    let opts = CompileOptions {
        config,
        entry: "setup".to_string(),
        ..Default::default()
    };
    registry
        .deploy_source(
            "auth",
            AUTH_SERVICE,
            &opts,
            Some(SetupSpec::new("setup", &[])),
        )
        .expect("the auth service must be verifier-accepted");
    let binary = registry.binary_id("auth").unwrap();
    (Server::new(registry, ServerConfig::default()), binary)
}

/// The identical request stream every session serves.
fn auth_stream() -> Vec<Request> {
    (0..8).map(|i| Request::new("handle_login", &[i])).collect()
}

/// Sessions with per-session private passwords drawn from `secret_tag`.
fn auth_sessions(n: usize, secret_tag: &str) -> Vec<SessionSpec> {
    (0..n)
        .map(|id| {
            let mut w = World::new();
            w.set_password("u", format!("{secret_tag}-password-{id}!").as_bytes());
            SessionSpec::new(id, w, auth_stream())
        })
        .collect()
}

#[test]
fn identical_streams_with_different_secrets_are_observably_identical() {
    for config in [Config::OurMpx, Config::OurSeg] {
        let (server, auth) = auth_server(config);
        // Two full multi-session runs over the *same* request stream with
        // *different* private state in every session.
        let run_a = server
            .serve(auth, &auth_sessions(4, "alpha"), ExecMode::Pooled)
            .unwrap();
        let run_b = server
            .serve(auth, &auth_sessions(4, "omega"), ExecMode::Pooled)
            .unwrap();
        assert_eq!(run_a.sessions.len(), 4);
        for (a, b) in run_a.sessions.iter().zip(&run_b.sessions) {
            assert_eq!(a.id, b.id);
            assert!(!a.sent.is_empty() && !a.log.is_empty());
            assert_eq!(
                a.sent, b.sent,
                "sent bytes diverged with the private state under {config}"
            );
            assert_eq!(
                a.log, b.log,
                "log bytes diverged with the private state under {config}"
            );
        }
        // The stream is identical across sessions too, so every session's
        // observable trace must be byte-identical to every other's.
        let first = &run_a.sessions[0];
        for s in &run_a.sessions[1..] {
            assert_eq!(s.sent, first.sent, "sessions diverged under {config}");
            assert_eq!(s.log, first.log);
        }
        // And the whole-run observable trace matches byte for byte.
        assert_eq!(run_a.observable(), run_b.observable());
    }
}

#[test]
fn cold_and_pooled_modes_are_observably_identical() {
    let (server, auth) = auth_server(Config::OurMpx);
    let sessions = auth_sessions(3, "mode");
    let cold = server.serve(auth, &sessions, ExecMode::Cold).unwrap();
    let pooled = server.serve(auth, &sessions, ExecMode::Pooled).unwrap();
    assert_eq!(cold.observable(), pooled.observable());
    for (c, p) in cold.sessions.iter().zip(&pooled.sessions) {
        assert_eq!(c.exit_codes, p.exit_codes);
    }
    assert!(
        pooled.metrics.mean_cycles() < cold.metrics.mean_cycles(),
        "pooled {} !< cold {}",
        pooled.metrics.mean_cycles(),
        cold.metrics.mean_cycles()
    );
}

#[test]
fn nginx_streams_never_leak_raw_file_bytes_and_lengths_match() {
    // The file-serving stream declassifies through T's crypto, so the exact
    // bytes differ with the served (private) content — but the *length* and
    // structure of the observable trace must not, and the raw secret bytes
    // must never appear.
    let make_server = || {
        let registry = Arc::new(Registry::new(VerifyPolicy::RequireVerified));
        let opts = CompileOptions {
            config: Config::OurMpx,
            entry: nginx::SETUP_ENTRY.to_string(),
            ..Default::default()
        };
        registry
            .deploy_source(
                "nginx",
                nginx::SOURCE,
                &opts,
                Some(SetupSpec::new(nginx::SETUP_ENTRY, &[])),
            )
            .unwrap();
        let binary = registry.binary_id("nginx").unwrap();
        (Server::new(registry, ServerConfig::default()), binary)
    };
    let sessions_with = |fill: u8| -> Vec<SessionSpec> {
        (0..3u64)
            .map(|id| {
                let mut w = World::new();
                w.add_secret_file("doc0", &[fill; 1024]);
                w.add_secret_file("doc1", &[fill ^ 0x5f; 1024]);
                let reqs = RequestGen::new(7 + id).stream(
                    StreamKind::NginxFiles {
                        files: 2,
                        response_size: 1024,
                    },
                    5,
                );
                SessionSpec::new(id, w, reqs)
            })
            .collect()
    };
    let (server, nginx_binary) = make_server();
    let run_a = server
        .serve(nginx_binary, &sessions_with(0x11), ExecMode::Pooled)
        .unwrap();
    let run_b = server
        .serve(nginx_binary, &sessions_with(0x77), ExecMode::Pooled)
        .unwrap();
    for (a, b) in run_a.sessions.iter().zip(&run_b.sessions) {
        assert_eq!(a.sent.len(), b.sent.len(), "response sizes leaked secrets");
        assert_eq!(a.log.len(), b.log.len());
        assert!(!a.sent.windows(32).any(|w| w == [0x11u8; 32]));
        assert!(!b.sent.windows(32).any(|w| w == [0x77u8; 32]));
    }
}

#[test]
fn broken_binary_is_rejected_at_load_time_and_never_serves() {
    // A vuln variant: strip the private-region MPX checks from the compiled
    // auth service, then try to register it.  The verify-then-load gate must
    // reject it with ConfVerify errors, and serving must fail because
    // nothing got registered.
    let compiled = compile_for(AUTH_SERVICE, Config::OurMpx).unwrap();
    let mut program = compiled.program.clone();
    let mut dropped = 0;
    for inst in &mut program.insts {
        if matches!(
            inst,
            MInst::BndCheck {
                bnd: BndReg::Bnd1,
                ..
            }
        ) {
            *inst = MInst::Nop;
            dropped += 1;
        }
    }
    assert!(dropped > 0);
    let registry = Arc::new(Registry::new(VerifyPolicy::RequireVerified));
    let binary = match registry.submit_program("auth", program, Config::OurMpx, None) {
        Err(RegisterError::Verify {
            errors, version, ..
        }) => {
            assert!(!errors.is_empty());
            // The rejected version exists but can never be promoted, so the
            // binary has no active version and serving fails.
            assert!(registry.promote(version).is_err());
            registry.binary_id("auth").unwrap()
        }
        other => panic!("expected load-time rejection, got {other:?}"),
    };
    let server = Server::new(registry, ServerConfig::default());
    assert!(server
        .serve(binary, &auth_sessions(1, "x"), ExecMode::Pooled)
        .is_err());
}
