//! Experiment E9 (end-to-end): two-run non-interference.  Running the same
//! protected program against worlds that differ only in their private state
//! must produce identical attacker-observable output (Theorem 1 lifted to the
//! whole toolchain + simulator).

use confllvm_repro::core::{compile_for, vm_for, Config};
use confllvm_repro::vm::World;
use confllvm_repro::workloads::{nginx, privado};

fn observable_for(
    source: &str,
    config: Config,
    world: World,
    entry: &str,
    args: &[i64],
) -> Vec<u8> {
    let compiled = compile_for(source, config).expect("compiles");
    let mut vm = vm_for(&compiled, world).expect("loads");
    let result = vm.run_function(entry, args);
    assert!(!result.outcome.is_fault(), "{:?}", result.outcome);
    vm.world.observable()
}

#[test]
fn nginx_observable_output_is_independent_of_private_file_content() {
    // Two worlds with different private file contents (same length).
    let make_world = |fill: u8| {
        let mut w = World::new();
        w.add_secret_file("doc", &vec![fill; 2048]);
        for _ in 0..2 {
            w.push_request(b"GET doc\0");
        }
        w
    };
    for config in [Config::OurMpx, Config::OurSeg] {
        let a = observable_for(nginx::SOURCE, config, make_world(0x11), "serve", &[2, 1024]);
        let b = observable_for(nginx::SOURCE, config, make_world(0x77), "serve", &[2, 1024]);
        // The *declassified* (encrypted) payload differs, so we compare only
        // lengths and the log structure here…
        assert_eq!(
            a.len(),
            b.len(),
            "observable length must not depend on secrets"
        );
        // …and, crucially, neither run contains the raw secret bytes.
        assert!(!a.windows(32).any(|w| w == [0x11u8; 32]));
        assert!(!b.windows(32).any(|w| w == [0x77u8; 32]));
    }
}

#[test]
fn password_checker_public_outputs_agree_across_secrets() {
    // A program whose public behaviour is fully determined by public inputs:
    // the password is read, digested privately, and only a constant goes out.
    let src = r#"
        extern void read_passwd(char *u, private char *p, int n);
        extern int send(int fd, char *buf, int n);
        char banner[16];
        int main() {
            char user[4];
            user[0] = 'u'; user[1] = 0;
            char pw[32];
            read_passwd(user, pw, 32);
            private int acc = 0;
            int i;
            for (i = 0; i < 32; i = i + 1) { acc = acc + pw[i]; }
            banner[0] = 'o'; banner[1] = 'k';
            send(1, banner, 2);
            return 0;
        }
    "#;
    for config in [Config::OurMpx, Config::OurSeg] {
        let mut w1 = World::new();
        w1.set_password("u", b"alpha-secret-000");
        let mut w2 = World::new();
        w2.set_password("u", b"omega-secret-999");
        let a = observable_for(src, config, w1, "main", &[]);
        let b = observable_for(src, config, w2, "main", &[]);
        assert_eq!(a, b, "public output diverged under {config}");
    }
}

#[test]
fn privado_declassified_result_is_the_only_secret_dependent_output() {
    let compiled = compile_for(privado::SOURCE, Config::OurMpx).expect("compiles");
    let mk = |fill: u8| {
        let mut w = World::new();
        w.add_secret_file("image", &vec![fill; 3072]);
        let mut vm = vm_for(&compiled, w).expect("loads");
        let r = vm.run_function("classify", &[1]);
        assert!(!r.outcome.is_fault());
        (vm.world.sent.clone(), vm.world.declassified.clone())
    };
    let (sent_a, decl_a) = mk(1);
    let (sent_b, decl_b) = mk(9);
    // The classification result (deliberately declassified) may differ…
    assert_ne!(decl_a, decl_b);
    // …but the only bytes on the wire are those declassified values.
    assert_eq!(sent_a.len(), 8 * decl_a.len());
    assert_eq!(sent_b.len(), 8 * decl_b.len());
}
