//! Concurrent registration under live traffic.
//!
//! The fleet-scale scenario: several provider threads hammer the registry
//! with valid upgrades, tampered binaries and byte-identical duplicates
//! (cache hits) while a server keeps serving request streams against the
//! active version.  The safety property is the hot-swap invariant — no
//! session is ever served by a version that did not pass the
//! verify-then-promote gate — and the liveness property is that the chaos is
//! *observably* a no-op: the traffic served under concurrent registration is
//! byte-identical to the same traffic served on a quiet serial run.

use std::collections::HashSet;
use std::sync::Arc;

use confllvm_repro::core::{compile_for, CompileOptions, Config};
use confllvm_repro::machine::{BndReg, MInst};
use confllvm_repro::server::{
    ExecMode, Registry, Request, Server, ServerConfig, SessionSpec, SetupSpec, VerifyPolicy,
    VersionId, VersionState,
};
use confllvm_repro::vm::World;

/// The served service: private digest, public banner + log line.  `salt`
/// only feeds private arithmetic, so every variant is observably identical —
/// submitting one is a realistic rolling upgrade.
fn service_source(salt: i64) -> String {
    format!(
        "
    extern void read_passwd(char *u, private char *p, int n);
    extern int send(int fd, char *buf, int n);
    extern int log_write(char *buf, int n);

    char banner[8];

    int setup() {{
        banner[0] = 79; banner[1] = 75; banner[2] = 10;
        return 1;
    }}

    private int digest(private char *pw, int n) {{
        int i;
        int acc = {salt};
        for (i = 0; i < n; i = i + 1) {{ acc = acc + pw[i] * 31; }}
        return acc;
    }}

    int handle_login(int attempt) {{
        char user[8];
        user[0] = 117; user[1] = 0;
        char pw[32];
        read_passwd(user, pw, 32);
        private int d = digest(pw, 32);
        send(1, banner, 3);
        char line[4];
        int digit = attempt % 10;
        line[0] = 76;
        line[1] = 48 + digit;
        line[2] = 10;
        log_write(line, 3);
        return attempt;
    }}

    int main() {{ return handle_login(0); }}
"
    )
}

fn opts() -> CompileOptions {
    CompileOptions {
        config: Config::OurMpx,
        entry: "setup".to_string(),
        ..Default::default()
    }
}

fn setup_spec() -> Option<SetupSpec> {
    Some(SetupSpec::new("setup", &[]))
}

/// Strip the private-region bound checks out of a compiled service — the
/// tampered binary ConfVerify must reject.
fn tampered_program(salt: i64) -> confllvm_repro::machine::Program {
    let compiled = compile_for(&service_source(salt), Config::OurMpx).unwrap();
    let mut program = compiled.program.clone();
    let mut dropped = 0;
    for inst in &mut program.insts {
        if matches!(
            inst,
            MInst::BndCheck {
                bnd: BndReg::Bnd1,
                ..
            }
        ) {
            *inst = MInst::Nop;
            dropped += 1;
        }
    }
    assert!(dropped > 0, "the tampering must remove something");
    program
}

fn sessions(n: usize) -> Vec<SessionSpec> {
    (0..n)
        .map(|id| {
            let mut w = World::new();
            w.set_password("u", format!("concurrent-secret-{id}").as_bytes());
            let requests = (0..5i64)
                .map(|i| Request::new("handle_login", &[i]))
                .collect();
            SessionSpec::new(id, w, requests)
        })
        .collect()
}

#[test]
fn concurrent_registrations_never_leak_into_live_traffic() {
    const SUBMITTERS: usize = 6;
    const ROUNDS: usize = 3;
    const SERVES: usize = 4;

    let registry = Arc::new(Registry::new(VerifyPolicy::RequireVerified).with_verify_threads(2));
    let v1 = registry
        .deploy_source("svc", &service_source(1), &opts(), setup_spec())
        .expect("v1 deploys");
    let binary = registry.binary_id("svc").unwrap();
    let server = Server::new(Arc::clone(&registry), ServerConfig::new().workers(3));

    // The quiet baseline: the same streams served with nothing else going on.
    let baseline = server
        .serve(binary, &sessions(4), ExecMode::Pooled)
        .unwrap();

    // Phase 1: submitter threads push valid upgrades, tampered binaries and
    // byte-identical duplicates while the server serves the same streams.
    let (reports, submitted) = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..SUBMITTERS {
            let registry = Arc::clone(&registry);
            workers.push(scope.spawn(move || {
                let mut accepted: Vec<VersionId> = Vec::new();
                let mut rejected: Vec<VersionId> = Vec::new();
                for round in 0..ROUNDS {
                    match t % 3 {
                        // A valid upgrade: new private salt, same observables.
                        0 => {
                            let salt = 100 + (t * ROUNDS + round) as i64;
                            let v = registry
                                .submit_source("svc", &service_source(salt), &opts(), setup_spec())
                                .expect("valid upgrades verify");
                            accepted.push(v);
                        }
                        // A tampered binary: must be rejected, every time.
                        1 => {
                            let err = registry
                                .submit_program(
                                    "svc",
                                    tampered_program(1),
                                    Config::OurMpx,
                                    setup_spec(),
                                )
                                .expect_err("tampered binaries never pass the gate");
                            rejected.push(err.version().expect("rejection mints a version"));
                        }
                        // A byte-identical duplicate of v1: verifies through
                        // the content-hash cache.
                        _ => {
                            let compiled = compile_for(&service_source(1), Config::OurMpx).unwrap();
                            let v = registry
                                .submit_program(
                                    "svc",
                                    compiled.program.clone(),
                                    Config::OurMpx,
                                    setup_spec(),
                                )
                                .expect("duplicates of a good binary verify");
                            accepted.push(v);
                        }
                    }
                }
                (accepted, rejected)
            }));
        }
        let mut reports = Vec::new();
        for _ in 0..SERVES {
            reports.push(
                server
                    .serve(binary, &sessions(4), ExecMode::Pooled)
                    .unwrap(),
            );
        }
        let submitted: Vec<_> = workers
            .into_iter()
            .map(|w| w.join().expect("submitter panicked"))
            .collect();
        (reports, submitted)
    });

    // Nothing was promoted during the storm, so every session everywhere ran
    // on v1 — warm, rejected and duplicate versions are all invisible.
    for report in &reports {
        for s in &report.sessions {
            assert_eq!(s.version, v1, "a non-promoted version served traffic");
        }
        // ...and the traffic is byte-identical to the quiet serial run.
        assert_eq!(
            report.observable(),
            baseline.observable(),
            "concurrent registration changed the observable trace"
        );
    }

    // Every submission landed in the state machine where it belongs.
    let mut all_versions = HashSet::new();
    for (accepted, rejected) in &submitted {
        for &v in accepted {
            assert_eq!(registry.version_state(v), Some(VersionState::Warm));
            assert!(all_versions.insert(v), "version handles must be unique");
        }
        for &v in rejected {
            assert_eq!(registry.version_state(v), Some(VersionState::Rejected));
            assert!(all_versions.insert(v), "version handles must be unique");
        }
    }

    // The duplicate submissions re-verified through the content-hash cache.
    let stats = registry.cache_stats();
    assert!(
        stats.hits > 0,
        "byte-identical re-registrations must hit the cache, stats {stats:?}"
    );

    // Phase 2: promote one of the warm upgrades; new sessions cut over, the
    // observable trace still does not move (the upgrade only changed private
    // state), and a rejected version can never be promoted.
    let warm = submitted
        .iter()
        .flat_map(|(accepted, _)| accepted.iter().copied())
        .next()
        .expect("at least one warm upgrade");
    registry.promote(warm).expect("warm versions promote");
    let after = server
        .serve(binary, &sessions(4), ExecMode::Pooled)
        .unwrap();
    for s in &after.sessions {
        assert_eq!(
            s.version, warm,
            "post-promotion sessions pin the new version"
        );
    }
    assert_eq!(after.observable(), baseline.observable());
    let rejected = submitted
        .iter()
        .flat_map(|(_, rejected)| rejected.iter().copied())
        .next()
        .expect("at least one rejection");
    assert!(
        registry.promote(rejected).is_err(),
        "rejected versions must never become promotable"
    );
}
